//! Regenerates Figure 7: the modules for which confine inference does not
//! infer all possible strong updates, with per-mode error counts measured
//! and compared against the paper's table.
//!
//! Run with `cargo run --release -p localias-bench --bin fig7`.
//! Accepts an optional corpus seed and `--jobs N` worker threads.

use localias_bench::{measure_corpus, take_jobs_flag};
use localias_corpus::{generate, DEFAULT_SEED, FIGURE7};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match take_jobs_flag(&mut args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("fig7: {e}");
            std::process::exit(2);
        }
    };
    let seed = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let corpus = generate(seed);

    println!("Figure 7: modules where confine inference misses strong updates");
    println!();
    println!(
        "{:<18} {:>24} {:>24} {:>24}",
        "module", "no confine", "confine inference", "all updates strong"
    );
    println!(
        "{:<18} {:>12} {:>11} {:>12} {:>11} {:>12} {:>11}",
        "", "paper", "measured", "paper", "measured", "paper", "measured"
    );
    let rows: Vec<localias_corpus::GeneratedModule> = FIGURE7
        .iter()
        .map(|&(name, ..)| {
            corpus
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("{name} missing from corpus"))
                .clone()
        })
        .collect();
    let measured = measure_corpus(&rows, jobs);
    let mut exact = 0;
    for (&(name, nc, cf, as_), r) in FIGURE7.iter().zip(&measured) {
        if (r.no_confine, r.confine, r.all_strong) == (nc, cf, as_) {
            exact += 1;
        }
        println!(
            "{:<18} {:>12} {:>11} {:>12} {:>11} {:>12} {:>11}",
            name, nc, r.no_confine, cf, r.confine, as_, r.all_strong
        );
    }
    println!();
    println!("{exact}/{} rows match the paper exactly", FIGURE7.len());
}
