//! Regenerates Figure 7: the modules for which confine inference does not
//! infer all possible strong updates, with per-mode error counts measured
//! and compared against the paper's table.
//!
//! Run with `cargo run --release -p localias-bench --bin fig7`.
//! Accepts an optional corpus seed, `--jobs N` worker threads, and
//! `--cache DIR` / `--no-cache` / `--cache-shards N` for the incremental
//! result cache (shared with `summary`/`fig6`/`experiment`: a warm store
//! serves the 14 rows here without re-analysis, and the sharded,
//! lock-protected store makes running them side by side safe).

use localias_bench::{finish_obs, init_obs, measure_corpus_with_cache, CliOpts};
use localias_corpus::{generate, FIGURE7};
use localias_obs as obs;

fn main() {
    let opts = match CliOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("fig7: {e}");
            std::process::exit(2);
        }
    };
    init_obs(&opts);
    let seed = opts.seed_or_default();
    let corpus = generate(seed);

    println!("Figure 7: modules where confine inference misses strong updates");
    println!();
    println!(
        "{:<18} {:>24} {:>24} {:>24}",
        "module", "no confine", "confine inference", "all updates strong"
    );
    println!(
        "{:<18} {:>12} {:>11} {:>12} {:>11} {:>12} {:>11}",
        "", "paper", "measured", "paper", "measured", "paper", "measured"
    );
    let rows: Vec<localias_corpus::GeneratedModule> = FIGURE7
        .iter()
        .map(|&(name, ..)| {
            corpus
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("{name} missing from corpus"))
                .clone()
        })
        .collect();
    let (measured, mut bench) = measure_corpus_with_cache(
        &rows,
        opts.jobs,
        opts.intra_jobs,
        seed,
        opts.alias,
        &opts.cache,
    );
    match finish_obs(&opts) {
        Ok(report) => {
            bench.profile = report.trace;
            bench.hist = report.hists;
        }
        Err(e) => {
            obs::error!("fig7: {e}");
            std::process::exit(1);
        }
    }
    let mut exact = 0;
    for (&(name, nc, cf, as_), r) in FIGURE7.iter().zip(&measured) {
        if (r.no_confine, r.confine, r.all_strong) == (nc, cf, as_) {
            exact += 1;
        }
        println!(
            "{:<18} {:>12} {:>11} {:>12} {:>11} {:>12} {:>11}",
            name, nc, r.no_confine, cf, r.confine, as_, r.all_strong
        );
    }
    println!();
    println!("{exact}/{} rows match the paper exactly", FIGURE7.len());
    if let Some(c) = &bench.cache {
        println!(
            "(cache: {} hits, {} misses, dir {})",
            c.hits, c.misses, c.dir
        );
    }
    if let Some(path) = &opts.bench_out {
        if let Err(e) = std::fs::write(path, bench.to_json()) {
            obs::error!("fig7: {path}: {e}");
            std::process::exit(1);
        }
    }
}
