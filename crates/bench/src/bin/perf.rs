//! Regenerates the Section 7 performance claim: the cost of confine
//! inference is a modest fraction of the total analysis time. The paper
//! reports 28.5 s with vs. 26.0 s without confine inference on its
//! largest affected module (`ide-tape`), i.e. ~10% overhead; we measure
//! the same ratio on our corpus (absolute times differ — 2003 hardware
//! and a real C frontend vs. this reimplementation).
//!
//! Run with `cargo run --release -p localias-bench --bin perf`.
//! Accepts the shared CLI surface ([`CliOpts`]) for uniformity; note that
//! `perf` always measures the analyses themselves, so the result cache is
//! never consulted here (`--cache`/`--no-cache` draw a warning).

use localias_bench::{measure_corpus, CliOpts};
use localias_corpus::generate;
use localias_cqual::{check_locks, Mode};
use std::time::Instant;

fn main() {
    let opts = match CliOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("perf: {e}");
            std::process::exit(2);
        }
    };
    if opts.cache_explicit {
        eprintln!("perf: note: perf measures uncached analysis; cache flags are ignored");
    }
    let corpus = generate(opts.seed_or_default());

    // The largest modules by source size, plus the paper's example.
    let mut by_size: Vec<&localias_corpus::GeneratedModule> = corpus.iter().collect();
    by_size.sort_by_key(|m| std::cmp::Reverse(m.source.len()));
    let mut subjects: Vec<&localias_corpus::GeneratedModule> =
        by_size.into_iter().take(3).collect();
    if let Some(ide) = corpus.iter().find(|m| m.name == "ide_tape") {
        if !subjects.iter().any(|m| m.name == ide.name) {
            subjects.push(ide);
        }
    }

    println!("Confine-inference overhead (paper: ide-tape 28.5 s with vs 26.0 s without, ~10%)");
    println!();
    println!(
        "{:<22} {:>10} {:>14} {:>14} {:>9}",
        "module", "size (B)", "without (ms)", "with (ms)", "overhead"
    );

    const REPS: u32 = 20;
    for m in subjects {
        let parsed = m.parse();
        // Warm up.
        let _ = check_locks(&parsed, Mode::NoConfine);
        let _ = check_locks(&parsed, Mode::Confine);

        let t0 = Instant::now();
        for _ in 0..REPS {
            let _ = check_locks(&parsed, Mode::NoConfine);
        }
        let without = t0.elapsed() / REPS;

        let t1 = Instant::now();
        for _ in 0..REPS {
            let _ = check_locks(&parsed, Mode::Confine);
        }
        let with = t1.elapsed() / REPS;

        let overhead = 100.0 * (with.as_secs_f64() - without.as_secs_f64()) / without.as_secs_f64();
        println!(
            "{:<22} {:>10} {:>14.3} {:>14.3} {:>8.0}%",
            m.name,
            m.source.len(),
            without.as_secs_f64() * 1e3,
            with.as_secs_f64() * 1e3,
            overhead
        );
    }
    println!();
    println!("(paper overhead on ide-tape: ~10%)");

    // Full-sweep comparison: three independent pipelines per module (the
    // pre-shared-analysis behaviour) vs. the shared-analysis path where
    // no-confine and all-strong reuse one base analysis. Single-threaded
    // by default so the two rows compare like for like (`--jobs N`
    // parallelizes the shared row only).
    let sweep_jobs = opts.jobs.max(1);
    println!();
    println!(
        "Full corpus sweep, {}:",
        if sweep_jobs == 1 {
            "single thread".to_string()
        } else {
            format!("{sweep_jobs} threads (shared row only)")
        }
    );
    let t0 = Instant::now();
    for m in &corpus {
        let p = m.parse();
        let _ = check_locks(&p, Mode::NoConfine).error_count();
        let _ = check_locks(&p, Mode::Confine).error_count();
        let _ = check_locks(&p, Mode::AllStrong).error_count();
    }
    let independent = t0.elapsed();

    let t1 = Instant::now();
    let _ = measure_corpus(&corpus, sweep_jobs);
    let shared = t1.elapsed();

    println!(
        "{:<38} {:>10.1?}",
        "  three independent pipelines/module", independent
    );
    println!("{:<38} {:>10.1?}", "  shared base analysis", shared);
    println!(
        "  speedup: {:.2}x (before parallel fan-out; multiply by cores)",
        independent.as_secs_f64() / shared.as_secs_f64()
    );
}
