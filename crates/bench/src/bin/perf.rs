//! Regenerates the Section 7 performance claim: the cost of confine
//! inference is a modest fraction of the total analysis time. The paper
//! reports 28.5 s with vs. 26.0 s without confine inference on its
//! largest affected module (`ide-tape`), i.e. ~10% overhead; we measure
//! the same ratio on our corpus (absolute times differ — 2003 hardware
//! and a real C frontend vs. this reimplementation).
//!
//! Run with `cargo run --release -p localias-bench --bin perf`.
//! Accepts the shared CLI surface ([`CliOpts`]) for uniformity; note that
//! `perf` always measures the analyses themselves, so the result cache is
//! never consulted here (`--cache`/`--no-cache` draw a warning).

use localias_bench::harness::{avg_of, timed};
use localias_bench::{finish_obs, init_obs, measure_corpus, CliOpts};
use localias_corpus::generate;
use localias_cqual::{check_locks, Mode};
use localias_obs as obs;
use std::time::Duration;

fn main() {
    let opts = match CliOpts::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("perf: {e}");
            std::process::exit(2);
        }
    };
    init_obs(&opts);
    if opts.cache_explicit {
        obs::warn!("perf: note: perf measures uncached analysis; cache flags are ignored");
    }
    let corpus = generate(opts.seed_or_default());

    // The largest modules by source size, plus the paper's example.
    let mut by_size: Vec<&localias_corpus::GeneratedModule> = corpus.iter().collect();
    by_size.sort_by_key(|m| std::cmp::Reverse(m.source.len()));
    let mut subjects: Vec<&localias_corpus::GeneratedModule> =
        by_size.into_iter().take(3).collect();
    if let Some(ide) = corpus.iter().find(|m| m.name == "ide_tape") {
        if !subjects.iter().any(|m| m.name == ide.name) {
            subjects.push(ide);
        }
    }

    println!("Confine-inference overhead (paper: ide-tape 28.5 s with vs 26.0 s without, ~10%)");
    println!();
    println!(
        "{:<22} {:>10} {:>14} {:>14} {:>9}",
        "module", "size (B)", "without (ms)", "with (ms)", "overhead"
    );

    const REPS: usize = 20;
    for m in subjects {
        let parsed = m.parse();
        // Warm up.
        let _ = check_locks(&parsed, Mode::NoConfine);
        let _ = check_locks(&parsed, Mode::Confine);

        let (_, without) = avg_of("perf.no_confine", REPS, || {
            check_locks(&parsed, Mode::NoConfine)
        });
        let (_, with) = avg_of("perf.confine", REPS, || check_locks(&parsed, Mode::Confine));

        let overhead = 100.0 * (with - without) / without;
        println!(
            "{:<22} {:>10} {:>14.3} {:>14.3} {:>8.0}%",
            m.name,
            m.source.len(),
            without * 1e3,
            with * 1e3,
            overhead
        );
    }
    println!();
    println!("(paper overhead on ide-tape: ~10%)");

    // Full-sweep comparison: three independent pipelines per module (the
    // pre-shared-analysis behaviour) vs. the shared-analysis path where
    // no-confine and all-strong reuse one base analysis. Single-threaded
    // by default so the two rows compare like for like (`--jobs N`
    // parallelizes the shared row only).
    let sweep_jobs = opts.jobs.max(1);
    println!();
    println!(
        "Full corpus sweep, {}:",
        if sweep_jobs == 1 {
            "single thread".to_string()
        } else {
            format!("{sweep_jobs} threads (shared row only)")
        }
    );
    let (_, independent) = timed("perf.independent_sweep", || {
        for m in &corpus {
            let p = m.parse();
            let _ = check_locks(&p, Mode::NoConfine).error_count();
            let _ = check_locks(&p, Mode::Confine).error_count();
            let _ = check_locks(&p, Mode::AllStrong).error_count();
        }
    });
    let (_, shared) = timed("perf.shared_sweep", || measure_corpus(&corpus, sweep_jobs));

    println!(
        "{:<38} {:>10.1?}",
        "  three independent pipelines/module",
        Duration::from_secs_f64(independent)
    );
    println!(
        "{:<38} {:>10.1?}",
        "  shared base analysis",
        Duration::from_secs_f64(shared)
    );
    println!(
        "  speedup: {:.2}x (before parallel fan-out; multiply by cores)",
        independent / shared
    );
    if let Err(e) = finish_obs(&opts) {
        obs::error!("perf: {e}");
        std::process::exit(1);
    }
}
