//! Benchmarks function-granular incremental recheck on the mega-module:
//! the edit→report loop a `localias watch` session lives in.
//!
//! One `IncrementalSession` analyzes the mega-module cold, then a stream
//! of seeded single-function edits (`localias_corpus::mega_edit`,
//! alternating benign constant tweaks and lock-pair breaks), then two
//! no-op variants (a trailing comment and a byte-identical repeat). For
//! **every** iteration the incremental reports are asserted byte-equal
//! to from-scratch checking of the same source, and — for edits built by
//! the generator — the error triple is asserted against its closed form.
//!
//! Run with `cargo run --release -p localias-bench --bin watch`.
//! Accepts `[SEED] [--funs N] [--edits N] [--intra-jobs N]
//! [--bench-out FILE] [--trace-out FILE] [--profile] [--quiet]`.
//! The machine-readable report (`--bench-out`, conventionally
//! `BENCH_watch.json`) uses schema `localias-bench-watch/v2`: cold /
//! per-edit / no-op latencies, hit/recheck slot counts, the check-phase
//! and end-to-end speedups over from-scratch analysis, the `hist`
//! latency block (v2), and the embedded obs profile block (`incr.*`
//! counters) when `--profile` or `--trace-out` is given.

use localias_bench::{finish_obs, init_obs, json_hists, json_trace, CliOpts};
use localias_corpus::{mega_edit, mega_module, MegaEditKind, DEFAULT_MEGA_FUNS};
use localias_cqual::{check_locks_frozen, IncrStats, IncrementalSession, LockReport, Mode, MODES};
use localias_obs as obs;
use std::fmt::Write as _;
use std::time::Instant;

/// Default number of seeded edits.
const DEFAULT_EDITS: usize = 8;

/// JSON float rendering (shortest round trip; non-finite degrades to 0).
fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "0.0".to_string()
    }
}

/// One from-scratch analysis of `source`: the three mode reports plus
/// `(total_seconds, check_seconds)` — the latter covering only the three
/// check passes, the phase the function cache accelerates.
fn full_check(name: &str, source: &str, jobs: usize) -> ([LockReport; 3], f64, f64) {
    let t0 = Instant::now();
    let parsed = localias_ast::parse_module(name, source).expect("generated module parses");
    let mut shared = localias_core::SharedAnalysis::new(&parsed);
    // Force both analyses up front so the check timing below is pure.
    shared.base_frozen();
    shared.confine_frozen();
    let t_check = Instant::now();
    let reports = MODES.map(|mode| {
        let (analysis, frozen) = match mode {
            Mode::Confine => shared.confine_frozen(),
            Mode::NoConfine | Mode::AllStrong => shared.base_frozen(),
        };
        check_locks_frozen(&parsed, analysis, frozen, mode, jobs)
    });
    let check = t_check.elapsed().as_secs_f64();
    (reports, t0.elapsed().as_secs_f64(), check)
}

struct EditRow {
    label: String,
    function: String,
    stats: IncrStats,
    full_total: f64,
    full_check: f64,
}

fn edit_kind_label(kind: MegaEditKind) -> &'static str {
    match kind {
        MegaEditKind::Compute => "compute",
        MegaEditKind::Whitespace => "whitespace",
        MegaEditKind::BreakLock => "break_lock",
    }
}

/// Analyzes `source` incrementally, asserts byte-identity against
/// from-scratch checking, and returns the stats plus the full run's
/// timings.
fn step(
    session: &mut IncrementalSession,
    name: &str,
    source: &str,
    jobs: usize,
    what: &str,
) -> (IncrStats, f64, f64) {
    let out = session.analyze(source).expect("generated module parses");
    // The from-scratch baseline runs at the same worker count as the
    // session, so the speedup never flatters the incremental side.
    let (want, full_total, full_check_secs) = full_check(name, source, jobs);
    assert_eq!(
        out.reports, want,
        "{what}: incremental report must be byte-identical to from-scratch checking"
    );
    (out.stats, full_total, full_check_secs)
}

fn main() {
    // Pre-extract `--funs N` and `--edits N`; the rest is the shared
    // surface.
    let mut rest = Vec::new();
    let mut funs = DEFAULT_MEGA_FUNS;
    let mut edits = DEFAULT_EDITS;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--funs" || a == "--edits" {
            let val = args.next().unwrap_or_default();
            let Ok(n) = val.parse() else {
                obs::error!("watch: bad count `{val}` for {a}");
                std::process::exit(2);
            };
            if a == "--funs" {
                funs = n;
            } else {
                edits = n;
            }
        } else {
            rest.push(a);
        }
    }
    let opts = match CliOpts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            obs::error!("watch: {e}");
            std::process::exit(2);
        }
    };
    init_obs(&opts);
    if opts.cache_explicit {
        obs::warn!(
            "watch: note: watch measures the in-process function cache; cache flags are ignored"
        );
    }
    let seed = opts.seed_or_default();

    let base = mega_module(seed, funs);
    let mut session = IncrementalSession::new(&base.name, opts.intra_jobs);

    println!(
        "Incremental recheck on the mega-module ({funs} functions, seed {seed}, \
         intra-jobs {})",
        opts.intra_jobs
    );
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "iteration", "recheck", "hits", "incr (ms)", "full (ms)", "speedup"
    );
    let row = |label: &str, s: &IncrStats, full_total: f64| {
        println!(
            "{label:<22} {:>4}/{:<4} {:>9} {:>11.3} {:>11.3} {:>8.2}x",
            s.rechecked,
            s.slots,
            s.hits,
            s.total_seconds * 1e3,
            full_total * 1e3,
            full_total / s.total_seconds.max(1e-9),
        );
    };

    // ---- Cold ----
    let (cold, cold_full_total, cold_full_check) = step(
        &mut session,
        &base.name,
        &base.source,
        opts.intra_jobs,
        "cold",
    );
    assert!(cold.cold);
    row("cold", &cold, cold_full_total);

    // ---- Seeded single-function edits ----
    let mut rows: Vec<EditRow> = Vec::new();
    for i in 0..edits {
        let kind = if i.is_multiple_of(2) {
            MegaEditKind::Compute
        } else {
            MegaEditKind::BreakLock
        };
        let e = mega_edit(seed, funs, i as u64, kind);
        let what = format!("edit {i} ({})", edit_kind_label(kind));
        let (stats, full_total, full_check_secs) = step(
            &mut session,
            &e.module.name,
            &e.module.source,
            opts.intra_jobs,
            &what,
        );
        // The generator's closed-form triple must hold for the edited
        // module (the from-scratch reports already matched above, so an
        // immediate byte-identical repeat reads the same reports back).
        let out = session
            .analyze(&e.module.source)
            .expect("re-analysis parses");
        assert!(out.stats.module_hit, "immediate repeat is a module hit");
        let counts: Vec<usize> = out.reports.iter().map(LockReport::error_count).collect();
        assert_eq!(
            counts,
            vec![
                e.module.expect.no_confine,
                e.module.expect.confine,
                e.module.expect.all_strong
            ],
            "{what}: closed-form triple"
        );
        row(&what, &stats, full_total);
        rows.push(EditRow {
            label: edit_kind_label(kind).to_string(),
            function: e.function.clone().unwrap_or_default(),
            stats,
            full_total,
            full_check: full_check_secs,
        });
    }

    // ---- No-op edits ----
    let last = if edits > 0 {
        let kind = if (edits - 1).is_multiple_of(2) {
            MegaEditKind::Compute
        } else {
            MegaEditKind::BreakLock
        };
        mega_edit(seed, funs, (edits - 1) as u64, kind).module
    } else {
        base.clone()
    };
    let ws_source = format!("{}// watch no-op\n", last.source);
    let (ws, ws_full_total, _) = step(
        &mut session,
        &last.name,
        &ws_source,
        opts.intra_jobs,
        "whitespace no-op",
    );
    assert_eq!(ws.rechecked, 0, "canonical no-op must recheck nothing");
    row("noop (whitespace)", &ws, ws_full_total);

    let t0 = Instant::now();
    let repeat = session.analyze(&ws_source).expect("repeat parses");
    let repeat_seconds = t0.elapsed().as_secs_f64();
    assert!(
        repeat.stats.module_hit,
        "byte-identical repeat is a module hit"
    );
    println!(
        "{:<22} {:>4}/{:<4} {:>9} {:>11.3}",
        "noop (byte-identical)",
        0,
        repeat.stats.slots,
        repeat.stats.hits,
        repeat_seconds * 1e3,
    );

    // ---- Aggregates ----
    let mean = |f: &dyn Fn(&EditRow) -> f64| -> f64 {
        if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(f).sum::<f64>() / rows.len() as f64
        }
    };
    let mean_incr_total = mean(&|r| r.stats.total_seconds);
    let mean_incr_check = mean(&|r| r.stats.check_seconds);
    let mean_full_total = mean(&|r| r.full_total);
    let mean_full_check = mean(&|r| r.full_check);
    let mean_fraction = mean(&|r| r.stats.rechecked as f64 / r.stats.slots.max(1) as f64);
    let check_speedup = mean_full_check / mean_incr_check.max(1e-9);
    let total_speedup = mean_full_total / mean_incr_total.max(1e-9);
    println!();
    println!(
        "edits: mean recheck fraction {:.1}% — check phase {:.3} ms vs {:.3} ms full \
         ({check_speedup:.1}x), end-to-end {:.3} ms vs {:.3} ms full ({total_speedup:.2}x)",
        mean_fraction * 100.0,
        mean_incr_check * 1e3,
        mean_full_check * 1e3,
        mean_incr_total * 1e3,
        mean_full_total * 1e3,
    );
    println!(
        "(end-to-end stays analysis-dominated: parse + alias/confine analysis re-run \
         whole-module; only the check phase is incremental)"
    );

    let obs_report = match finish_obs(&opts) {
        Ok(r) => r,
        Err(e) => {
            obs::error!("watch: {e}");
            std::process::exit(1);
        }
    };

    if let Some(path) = &opts.bench_out {
        let mut edit_rows = String::new();
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                edit_rows,
                "\n      {{\"kind\": \"{}\", \"function\": \"{}\", \
                 \"total_seconds\": {}, \"check_seconds\": {}, \
                 \"full_total_seconds\": {}, \"full_check_seconds\": {}, \
                 \"rechecked\": {}, \"hits\": {}, \"slots\": {}, \
                 \"summary_changes\": {}}}{}",
                r.label,
                r.function,
                jf(r.stats.total_seconds),
                jf(r.stats.check_seconds),
                jf(r.full_total),
                jf(r.full_check),
                r.stats.rechecked,
                r.stats.hits,
                r.stats.slots,
                r.stats.summary_changes,
                if i + 1 < rows.len() { "," } else { "" },
            );
        }
        let profile = match &obs_report.trace {
            None => "null".to_string(),
            Some(t) => json_trace(t),
        };
        let hist = json_hists(&obs_report.hists);
        let json = format!(
            "{{\n  \"schema\": \"localias-bench-watch/v2\",\n  \"seed\": {seed},\n  \
             \"funs\": {funs},\n  \"edits\": {edits},\n  \"intra_jobs\": {},\n  \
             \"cold\": {{\"total_seconds\": {}, \"check_seconds\": {}, \
             \"full_total_seconds\": {}, \"full_check_seconds\": {}}},\n  \
             \"edit\": {{\n    \"mean_total_seconds\": {},\n    \
             \"mean_check_seconds\": {},\n    \"mean_full_total_seconds\": {},\n    \
             \"mean_full_check_seconds\": {},\n    \"mean_rechecked_fraction\": {},\n    \
             \"check_speedup\": {},\n    \"total_speedup\": {},\n    \
             \"rows\": [{}\n    ]\n  }},\n  \
             \"noop\": {{\"whitespace_seconds\": {}, \"whitespace_rechecked\": {}, \
             \"module_hit_seconds\": {}}},\n  \"hist\": {hist},\n  \
             \"profile\": {profile}\n}}\n",
            opts.intra_jobs,
            jf(cold.total_seconds),
            jf(cold.check_seconds),
            jf(cold_full_total),
            jf(cold_full_check),
            jf(mean_incr_total),
            jf(mean_incr_check),
            jf(mean_full_total),
            jf(mean_full_check),
            jf(mean_fraction),
            jf(check_speedup),
            jf(total_speedup),
            edit_rows,
            jf(ws.total_seconds),
            ws.rechecked,
            jf(repeat_seconds),
        );
        if let Err(e) = std::fs::write(path, json) {
            obs::error!("watch: {path}: {e}");
            std::process::exit(1);
        }
        println!("(wrote {path})");
    }
}
