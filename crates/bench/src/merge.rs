//! Merging partitioned bench artifacts.
//!
//! `localias experiment --partition i/N` writes one
//! `localias-bench-experiment/v6` artifact per partition, each carrying
//! its slice's per-module `results` rows. [`merge_partitions`] validates
//! that a set of such artifacts is one complete, disjoint cover of a
//! single seeded corpus — same seed, same partition count, every index
//! present exactly once, every slice the size the partitioning says it
//! must be — and unions them into a single artifact equal in result set
//! to an unpartitioned sweep: rows concatenate in partition order (which
//! *is* stream order, partitions being contiguous ranges), error totals
//! recompute from the rows, wall-clock is the slowest partition (they
//! run concurrently), thread counts sum, and latency histograms merge
//! bucket-by-bucket (the per-partition histograms describe disjoint
//! sample sets, so the merged distribution is exactly the union).

use crate::json::Value;
use crate::{json, ExperimentBench, ModuleResult, PartitionInfo, PhaseTimes};
use localias_corpus::partition_range;
use localias_obs::HistSnapshot;
use std::time::Duration;

/// The schema the merge both consumes and produces.
pub const MERGE_SCHEMA: &str = "localias-bench-experiment/v6";

fn field<'v>(doc: &'v Value, key: &str) -> Result<&'v Value, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn usize_field(doc: &Value, key: &str) -> Result<usize, String> {
    field(doc, key)?
        .as_usize()
        .ok_or_else(|| format!("field {key:?} is not a non-negative integer"))
}

fn f64_field(doc: &Value, key: &str) -> Result<f64, String> {
    field(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

/// One partition artifact, decoded to the fields the merge needs.
struct Partition {
    info: PartitionInfo,
    seed: u64,
    threads: usize,
    wall: Duration,
    phases: PhaseTimes,
    results: Vec<ModuleResult>,
    hists: Vec<HistSnapshot>,
}

/// Decodes a v6 `hist` block back into snapshots, keeping only the
/// histograms that saw samples (the renderer writes zeros for shape).
fn decode_hists(doc: &Value, label: &str) -> Result<Vec<HistSnapshot>, String> {
    let block = field(doc, "hist").map_err(|e| format!("{label}: {e}"))?;
    let Value::Obj(pairs) = block else {
        return Err(format!("{label}: \"hist\" is not an object"));
    };
    let mut out = Vec::new();
    for (name, v) in pairs {
        let count =
            usize_field(v, "count").map_err(|e| format!("{label}: hist.{name}.{e}"))? as u64;
        if count == 0 {
            continue;
        }
        let u64_of = |key: &str| -> Result<u64, String> {
            field(v, key)
                .and_then(|x| {
                    x.as_u64()
                        .ok_or_else(|| format!("{key} is not a non-negative integer"))
                })
                .map_err(|e| format!("{label}: hist.{name}: {e}"))
        };
        let buckets_doc = field(v, "buckets").map_err(|e| format!("{label}: hist.{name}: {e}"))?;
        let buckets_doc = buckets_doc
            .as_arr()
            .ok_or_else(|| format!("{label}: hist.{name}: \"buckets\" is not an array"))?;
        let mut buckets = Vec::with_capacity(buckets_doc.len());
        for (i, pair) in buckets_doc.iter().enumerate() {
            let cells = pair
                .as_arr()
                .filter(|c| c.len() == 2)
                .ok_or_else(|| format!("{label}: hist.{name}.buckets[{i}] is not a pair"))?;
            let idx = cells[0]
                .as_usize()
                .filter(|&i| i < localias_obs::HIST_BUCKETS)
                .ok_or_else(|| format!("{label}: hist.{name}.buckets[{i}] index out of range"))?;
            let n = cells[1]
                .as_u64()
                .ok_or_else(|| format!("{label}: hist.{name}.buckets[{i}] count not an integer"))?;
            buckets.push((idx, n));
        }
        out.push(HistSnapshot {
            name: name.clone(),
            count,
            sum_ns: u64_of("sum_ns")?,
            min_ns: u64_of("min_ns")?,
            max_ns: u64_of("max_ns")?,
            buckets,
        });
    }
    Ok(out)
}

fn decode(text: &str, label: &str) -> Result<Partition, String> {
    let doc = json::parse(text).map_err(|e| format!("{label}: {e}"))?;
    let schema = field(&doc, "schema")
        .and_then(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "schema is not a string".into())
        })
        .map_err(|e| format!("{label}: {e}"))?;
    if schema != MERGE_SCHEMA {
        return Err(format!(
            "{label}: schema {schema:?} is not {MERGE_SCHEMA:?} — \
             regenerate the artifact with this binary"
        ));
    }
    let part = field(&doc, "partition").map_err(|e| format!("{label}: {e}"))?;
    if part.is_null() {
        return Err(format!(
            "{label}: not a partition artifact (\"partition\" is null); \
             run the sweep with --partition i/N"
        ));
    }
    let info = PartitionInfo {
        index: usize_field(part, "index").map_err(|e| format!("{label}: partition.{e}"))?,
        count: usize_field(part, "count").map_err(|e| format!("{label}: partition.{e}"))?,
        total: usize_field(part, "total").map_err(|e| format!("{label}: partition.{e}"))?,
    };
    let rows = field(&doc, "results").map_err(|e| format!("{label}: {e}"))?;
    if rows.is_null() {
        return Err(format!(
            "{label}: partition artifact carries no \"results\" rows"
        ));
    }
    let rows = rows
        .as_arr()
        .ok_or_else(|| format!("{label}: \"results\" is not an array"))?;
    let mut results = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_arr()
            .filter(|c| c.len() == 4)
            .ok_or_else(|| format!("{label}: results[{i}] is not a [name, nc, cf, as] row"))?;
        results.push(ModuleResult {
            name: cells[0]
                .as_str()
                .ok_or_else(|| format!("{label}: results[{i}] name is not a string"))?
                .to_string(),
            no_confine: cells[1]
                .as_usize()
                .ok_or_else(|| format!("{label}: results[{i}] counts must be integers"))?,
            confine: cells[2]
                .as_usize()
                .ok_or_else(|| format!("{label}: results[{i}] counts must be integers"))?,
            all_strong: cells[3]
                .as_usize()
                .ok_or_else(|| format!("{label}: results[{i}] counts must be integers"))?,
        });
    }
    let phases_doc = field(&doc, "phase_cpu_seconds").map_err(|e| format!("{label}: {e}"))?;
    let phases = PhaseTimes {
        parse: Duration::from_secs_f64(f64_field(phases_doc, "parse").unwrap_or(0.0).max(0.0)),
        check: Duration::from_secs_f64(f64_field(phases_doc, "check").unwrap_or(0.0).max(0.0)),
        confine: Duration::from_secs_f64(f64_field(phases_doc, "confine").unwrap_or(0.0).max(0.0)),
    };
    Ok(Partition {
        info,
        seed: field(&doc, "seed")
            .and_then(|v| v.as_u64().ok_or_else(|| "seed is not an integer".into()))
            .map_err(|e| format!("{label}: {e}"))?,
        threads: usize_field(&doc, "threads").map_err(|e| format!("{label}: {e}"))?,
        wall: Duration::from_secs_f64(f64_field(&doc, "wall_seconds")?.max(0.0)),
        phases,
        results,
        hists: decode_hists(&doc, label)?,
    })
}

/// Merges per-partition histogram sets: same-named snapshots union
/// bucket-by-bucket, names unique to one partition pass through. The
/// result is sorted by name, matching a single-process drain.
fn merge_hists(parts: Vec<Vec<HistSnapshot>>) -> Vec<HistSnapshot> {
    let mut merged: Vec<HistSnapshot> = Vec::new();
    for hists in parts {
        for h in hists {
            match merged.iter_mut().find(|m| m.name == h.name) {
                Some(m) => m.merge(&h),
                None => merged.push(h),
            }
        }
    }
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    merged
}

/// Merges per-partition bench JSON documents (as `(label, text)` pairs,
/// the label naming the source for error messages) into one artifact.
///
/// Validation is strict: every artifact must use the current schema,
/// agree on seed, partition count, and corpus total; the indices must
/// cover `0..count` exactly once; and each slice must carry exactly the
/// rows its contiguous range contains. The merged artifact's `results`
/// are therefore the same module-result set, in the same stream order,
/// as a single-process sweep of the whole corpus.
pub fn merge_partitions(docs: &[(String, String)]) -> Result<ExperimentBench, String> {
    if docs.is_empty() {
        return Err("nothing to merge: no artifacts given".into());
    }
    let mut parts = docs
        .iter()
        .map(|(label, text)| decode(text, label))
        .collect::<Result<Vec<_>, _>>()?;

    let first = &parts[0];
    let (seed, count, total) = (first.seed, first.info.count, first.info.total);
    if parts.len() != count {
        return Err(format!(
            "expected {count} partition artifacts (per --partition i/{count}), got {}",
            parts.len()
        ));
    }
    for p in &parts {
        if p.seed != seed {
            return Err(format!(
                "seed mismatch: partition {} has seed {}, partition {} has seed {}",
                first.info.index, seed, p.info.index, p.seed
            ));
        }
        if p.info.count != count || p.info.total != total {
            return Err(format!(
                "partitioning mismatch: {}/{} over {} modules vs {}/{} over {}",
                first.info.index, count, total, p.info.index, p.info.count, p.info.total
            ));
        }
    }
    parts.sort_by_key(|p| p.info.index);
    for (want, p) in parts.iter().enumerate() {
        if p.info.index != want {
            return Err(format!(
                "partition indices must cover 0..{count} exactly once; \
                 found index {} where {want} was expected",
                p.info.index
            ));
        }
        let expected = partition_range(total, p.info.index, count).len();
        if p.results.len() != expected {
            return Err(format!(
                "partition {}/{count} must carry {expected} modules, artifact has {}",
                p.info.index,
                p.results.len()
            ));
        }
    }

    let mut results: Vec<ModuleResult> = Vec::with_capacity(total);
    let mut phases = PhaseTimes::default();
    let mut wall = Duration::ZERO;
    let mut threads = 0usize;
    let mut hist_parts = Vec::with_capacity(parts.len());
    for p in parts {
        phases.accumulate(p.phases);
        wall = wall.max(p.wall);
        threads += p.threads;
        hist_parts.push(p.hists);
        results.extend(p.results);
    }
    let errors = results.iter().fold((0, 0, 0), |(nc, cf, st), r| {
        (nc + r.no_confine, cf + r.confine, st + r.all_strong)
    });
    Ok(ExperimentBench {
        seed,
        modules: results.len(),
        threads,
        wall,
        phases,
        errors,
        potential: results.iter().map(ModuleResult::potential).sum(),
        eliminated: results.iter().map(ModuleResult::eliminated).sum(),
        cache: None,
        profile: None,
        hist: merge_hists(hist_parts),
        partition: None,
        results: Some(results),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure_stream_cached, CorpusStream};
    use localias_alias::Backend;

    fn partition_artifact(stream: &CorpusStream, index: usize, count: usize) -> (String, String) {
        let range = stream.partition(index, count);
        let (results, mut bench) =
            measure_stream_cached(stream, range, 1, 1, Backend::Steensgaard, None);
        bench.partition = Some(PartitionInfo {
            index,
            count,
            total: stream.len(),
        });
        bench.results = Some(results);
        // Each partition observed one synthetic sample, so the merged
        // artifact must carry their bucket-union.
        let sample = 100 * (index as u64 + 1);
        bench.hist = vec![HistSnapshot {
            name: "analyze.module".into(),
            count: 1,
            sum_ns: sample,
            min_ns: sample,
            max_ns: sample,
            buckets: vec![(localias_obs::bucket_index(sample), 1)],
        }];
        (format!("part{index}.json"), bench.to_json())
    }

    #[test]
    fn disjoint_partitions_merge_to_the_full_sweep() {
        let stream = CorpusStream::new(11, 24);
        let docs: Vec<_> = (0..3).map(|i| partition_artifact(&stream, i, 3)).collect();
        let merged = merge_partitions(&docs).unwrap();

        let (full, full_bench) =
            measure_stream_cached(&stream, 0..stream.len(), 1, 1, Backend::Steensgaard, None);
        assert_eq!(merged.modules, full.len());
        assert_eq!(merged.errors, full_bench.errors);
        assert_eq!(merged.potential, full_bench.potential);
        assert_eq!(merged.eliminated, full_bench.eliminated);
        let rows = merged.results.as_ref().unwrap();
        for (got, want) in rows.iter().zip(&full) {
            assert_eq!(got.name, want.name);
            assert_eq!(
                (got.no_confine, got.confine, got.all_strong),
                (want.no_confine, want.confine, want.all_strong)
            );
        }
        // Histograms merged bucket-by-bucket across the partitions: one
        // synthetic sample each of 100, 200, and 300 ns.
        let h = merged
            .hist
            .iter()
            .find(|h| h.name == "analyze.module")
            .unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_ns, 600);
        assert_eq!(h.min_ns, 100);
        assert_eq!(h.max_ns, 300);
        assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 3);

        // The merged artifact is itself a full (unpartitioned) document.
        let rendered = merged.to_json();
        assert!(rendered.contains("\"partition\": null"));
        assert!(rendered.contains("\"results\": ["));
        assert!(rendered.contains("\"hist\": {"));
    }

    #[test]
    fn merge_order_is_index_order_not_argument_order() {
        let stream = CorpusStream::new(5, 10);
        let mut docs: Vec<_> = (0..2).map(|i| partition_artifact(&stream, i, 2)).collect();
        docs.reverse();
        let merged = merge_partitions(&docs).unwrap();
        let (full, _) =
            measure_stream_cached(&stream, 0..stream.len(), 1, 1, Backend::Steensgaard, None);
        let names: Vec<_> = merged
            .results
            .unwrap()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        let want: Vec<_> = full.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, want);
    }

    #[test]
    fn merge_rejects_incomplete_or_mismatched_sets() {
        let stream = CorpusStream::new(5, 10);
        let p0 = partition_artifact(&stream, 0, 2);
        let p1 = partition_artifact(&stream, 1, 2);

        let err = merge_partitions(std::slice::from_ref(&p0)).unwrap_err();
        assert!(err.contains("expected 2 partition artifacts"), "{err}");

        let err = merge_partitions(&[p0.clone(), p0.clone()]).unwrap_err();
        assert!(err.contains("exactly once"), "{err}");

        let other_seed = CorpusStream::new(6, 10);
        let q1 = partition_artifact(&other_seed, 1, 2);
        let err = merge_partitions(&[p0.clone(), q1]).unwrap_err();
        assert!(err.contains("seed mismatch"), "{err}");

        let empty: &[(String, String)] = &[];
        assert!(merge_partitions(empty).is_err());

        let err = merge_partitions(&[(p1.0.clone(), "{not json".into()), p1.clone()]).unwrap_err();
        assert!(err.contains("json parse error"), "{err}");

        // A full (unpartitioned) artifact is rejected up front.
        let (_, mut bench) =
            measure_stream_cached(&stream, 0..stream.len(), 1, 1, Backend::Steensgaard, None);
        bench.partition = None;
        bench.results = None;
        let err = merge_partitions(&[("full.json".into(), bench.to_json()), p1]).unwrap_err();
        assert!(err.contains("not a partition artifact"), "{err}");
    }
}
