//! `bench-diff` — the perf-regression gate over two bench artifacts.
//!
//! Compares an old and a new bench JSON document produced by the same
//! harness family (`localias-bench-experiment`, `-intra`, `-watch`,
//! `-alias`, `-scale`, or `-fuzz`) metric by metric: throughput, phase
//! and latency times, histogram percentiles, cache hit rates, and
//! false-positive rates. Every metric carries a direction — lower is
//! better for latencies, higher for throughput — and a relative change
//! past the threshold in the *worse* direction is a regression.
//!
//! Comparison is intersection-based: only metrics present in both
//! documents are compared (so a v5→v6 schema bump degrades to the
//! shared fields instead of erroring), but the two schemas must belong
//! to the same family — diffing a watch report against an experiment
//! sweep is a usage error, not a clean result. A metric whose old value
//! is zero and whose new value is worse counts as a 100% regression
//! (rates that were clean must stay clean); zero-to-zero is unchanged.
//!
//! The report renders as a human table ([`DiffReport::render_table`])
//! and as machine JSON (schema `localias-bench-diff/v1`,
//! [`DiffReport::to_json`]).

use crate::json::{self, Value};
use std::fmt::Write as _;

/// Which way a metric is allowed to move without being a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latencies, memory, error rates: growing is a regression.
    LowerIsBetter,
    /// Throughput, speedups, hit rates: shrinking is a regression.
    HigherIsBetter,
}

/// The default regression threshold, in percent.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// One metric compared across the two artifacts.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Dotted metric name (`modules_per_second`, `hist.analyze.module.p95_ns`, …).
    pub name: String,
    /// Value in the old artifact.
    pub old: f64,
    /// Value in the new artifact.
    pub new: f64,
    /// Which direction is worse.
    pub direction: Direction,
}

impl MetricDiff {
    /// Relative change in the *worse* direction, in percent: positive
    /// means the new artifact regressed, negative that it improved.
    /// An old value of zero compares exactly: unchanged if new is also
    /// zero, ±100% otherwise.
    pub fn delta_pct(&self) -> f64 {
        let worse = match self.direction {
            Direction::LowerIsBetter => self.new - self.old,
            Direction::HigherIsBetter => self.old - self.new,
        };
        if self.old == 0.0 {
            if worse == 0.0 {
                0.0
            } else {
                100.0_f64.copysign(worse)
            }
        } else {
            100.0 * worse / self.old.abs()
        }
    }

    /// Whether this metric regressed past `threshold_pct`.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.delta_pct() > threshold_pct
    }
}

/// The outcome of one bench-diff comparison.
#[derive(Debug)]
pub struct DiffReport {
    /// The shared schema family (e.g. `localias-bench-experiment`).
    pub family: String,
    /// The two artifacts' full schema strings.
    pub schemas: (String, String),
    /// Regression threshold in percent.
    pub threshold_pct: f64,
    /// Every compared metric, in extraction order.
    pub metrics: Vec<MetricDiff>,
    /// Metric names present in only one document (skipped).
    pub skipped: Vec<String>,
}

impl DiffReport {
    /// The metrics that regressed past the threshold.
    pub fn regressions(&self) -> Vec<&MetricDiff> {
        self.metrics
            .iter()
            .filter(|m| m.regressed(self.threshold_pct))
            .collect()
    }

    /// Human-readable comparison table with a verdict line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-diff: {} ({} vs {}), threshold {}%",
            self.family, self.schemas.0, self.schemas.1, self.threshold_pct
        );
        let _ = writeln!(
            out,
            "{:<34} {:>14} {:>14} {:>9}  verdict",
            "metric", "old", "new", "delta"
        );
        for m in &self.metrics {
            let delta = m.delta_pct();
            let verdict = if m.regressed(self.threshold_pct) {
                "REGRESSED"
            } else if delta < -self.threshold_pct {
                "improved"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<34} {:>14} {:>14} {:>+8.1}%  {}",
                m.name,
                fmt_value(m.old),
                fmt_value(m.new),
                delta,
                verdict
            );
        }
        for name in &self.skipped {
            let _ = writeln!(out, "{name:<34} (present in only one artifact — skipped)");
        }
        let regressions = self.regressions();
        if regressions.is_empty() {
            let _ = writeln!(
                out,
                "no regressions past {}% across {} metrics",
                self.threshold_pct,
                self.metrics.len()
            );
        } else {
            let _ = writeln!(
                out,
                "{} metric(s) regressed past {}%",
                regressions.len(),
                self.threshold_pct
            );
        }
        out
    }

    /// Machine-readable report (schema `localias-bench-diff/v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"localias-bench-diff/v1\",\n");
        let _ = write!(
            out,
            "  \"family\": {},\n  \"old_schema\": {},\n  \"new_schema\": {},\n  \
             \"threshold_pct\": {},\n  \"regressions\": {},\n  \"metrics\": [",
            json_str(&self.family),
            json_str(&self.schemas.0),
            json_str(&self.schemas.1),
            fmt_json_f64(self.threshold_pct),
            self.regressions().len(),
        );
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"old\": {}, \"new\": {}, \"delta_pct\": {}, \
                 \"regressed\": {}}}",
                json_str(&m.name),
                fmt_json_f64(m.old),
                fmt_json_f64(m.new),
                fmt_json_f64(m.delta_pct()),
                m.regressed(self.threshold_pct),
            );
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"skipped\": [");
        for (i, s) in self.skipped.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(s));
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    Value::Str(s.to_string()).render()
}

fn fmt_json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "0.0".to_string()
    }
}

/// Renders a metric value compactly: integers plainly, small floats
/// with enough precision to see the change.
fn fmt_value(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.6}")
    }
}

/// One extracted `(name, direction, value)` triple.
type Extracted = (String, Direction, f64);

fn get_f64(doc: &Value, path: &[&str]) -> Option<f64> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64()
}

fn push(out: &mut Vec<Extracted>, name: &str, dir: Direction, v: Option<f64>) {
    if let Some(v) = v {
        out.push((name.to_string(), dir, v));
    }
}

/// The `hist` block's percentiles, one metric per sampled histogram.
/// Zero-sample histograms are skipped (their percentiles are shape
/// padding, not measurements).
fn extract_hists(doc: &Value, out: &mut Vec<Extracted>) {
    let Some(Value::Obj(pairs)) = doc.get("hist") else {
        return;
    };
    for (name, h) in pairs {
        if h.get("count").and_then(Value::as_u64).unwrap_or(0) == 0 {
            continue;
        }
        for pct in ["p50_ns", "p90_ns", "p95_ns", "p99_ns", "max_ns"] {
            push(
                out,
                &format!("hist.{name}.{pct}"),
                Direction::LowerIsBetter,
                h.get(pct).and_then(Value::as_f64),
            );
        }
    }
}

/// Experiment-family metrics (`localias-bench-experiment/v*`).
fn extract_experiment(doc: &Value) -> Vec<Extracted> {
    use Direction::*;
    let mut out = Vec::new();
    push(
        &mut out,
        "modules_per_second",
        HigherIsBetter,
        get_f64(doc, &["modules_per_second"]),
    );
    push(
        &mut out,
        "wall_seconds",
        LowerIsBetter,
        get_f64(doc, &["wall_seconds"]),
    );
    for phase in ["parse", "check", "confine"] {
        push(
            &mut out,
            &format!("phase_cpu_seconds.{phase}"),
            LowerIsBetter,
            get_f64(doc, &["phase_cpu_seconds", phase]),
        );
    }
    if let Some(cache) = doc.get("cache").filter(|c| !c.is_null()) {
        let hits = get_f64(cache, &["hits"]).unwrap_or(0.0);
        let misses = get_f64(cache, &["misses"]).unwrap_or(0.0);
        if hits + misses > 0.0 {
            out.push((
                "cache.hit_rate".to_string(),
                HigherIsBetter,
                hits / (hits + misses),
            ));
        }
        push(
            &mut out,
            "cache.load_seconds",
            LowerIsBetter,
            get_f64(cache, &["load_seconds"]),
        );
        push(
            &mut out,
            "cache.store_seconds",
            LowerIsBetter,
            get_f64(cache, &["store_seconds"]),
        );
    }
    extract_hists(doc, &mut out);
    out
}

/// Intra-family metrics (`localias-bench-intra/v*`).
fn extract_intra(doc: &Value) -> Vec<Extracted> {
    use Direction::*;
    let mut out = Vec::new();
    push(
        &mut out,
        "sequential_seconds",
        LowerIsBetter,
        get_f64(doc, &["sequential_seconds"]),
    );
    push(
        &mut out,
        "parallel_seconds",
        LowerIsBetter,
        get_f64(doc, &["parallel_seconds"]),
    );
    push(
        &mut out,
        "speedup",
        HigherIsBetter,
        get_f64(doc, &["speedup"]),
    );
    extract_hists(doc, &mut out);
    out
}

/// Watch-family metrics (`localias-bench-watch/v*`).
fn extract_watch(doc: &Value) -> Vec<Extracted> {
    use Direction::*;
    let mut out = Vec::new();
    push(
        &mut out,
        "cold.total_seconds",
        LowerIsBetter,
        get_f64(doc, &["cold", "total_seconds"]),
    );
    push(
        &mut out,
        "edit.mean_total_seconds",
        LowerIsBetter,
        get_f64(doc, &["edit", "mean_total_seconds"]),
    );
    push(
        &mut out,
        "edit.mean_check_seconds",
        LowerIsBetter,
        get_f64(doc, &["edit", "mean_check_seconds"]),
    );
    push(
        &mut out,
        "edit.check_speedup",
        HigherIsBetter,
        get_f64(doc, &["edit", "check_speedup"]),
    );
    push(
        &mut out,
        "edit.total_speedup",
        HigherIsBetter,
        get_f64(doc, &["edit", "total_speedup"]),
    );
    push(
        &mut out,
        "noop.module_hit_seconds",
        LowerIsBetter,
        get_f64(doc, &["noop", "module_hit_seconds"]),
    );
    extract_hists(doc, &mut out);
    out
}

/// Alias-family metrics (`localias-bench-alias/v*`).
fn extract_alias(doc: &Value) -> Vec<Extracted> {
    use Direction::*;
    let mut out = Vec::new();
    if let Some(backends) = doc.get("backends").and_then(Value::as_arr) {
        for b in backends {
            let Some(name) = b.get("backend").and_then(Value::as_str) else {
                continue;
            };
            push(
                &mut out,
                &format!("{name}.modules_per_sec"),
                HigherIsBetter,
                get_f64(b, &["modules_per_sec"]),
            );
            push(
                &mut out,
                &format!("{name}.wall_seconds"),
                LowerIsBetter,
                get_f64(b, &["wall_seconds"]),
            );
            push(
                &mut out,
                &format!("{name}.elimination_rate"),
                HigherIsBetter,
                get_f64(b, &["elimination_rate"]),
            );
        }
    }
    extract_hists(doc, &mut out);
    out
}

/// Scale-family metrics (`localias-bench-scale/v*`), one pair per
/// (modules, partitions) grid point.
fn extract_scale(doc: &Value) -> Vec<Extracted> {
    use Direction::*;
    let mut out = Vec::new();
    if let Some(points) = doc.get("points").and_then(Value::as_arr) {
        for p in points {
            let (Some(modules), Some(parts)) = (
                p.get("modules").and_then(Value::as_u64),
                p.get("partitions").and_then(Value::as_u64),
            ) else {
                continue;
            };
            let key = format!("points.{modules}x{parts}");
            push(
                &mut out,
                &format!("{key}.modules_per_second"),
                HigherIsBetter,
                get_f64(p, &["modules_per_second"]),
            );
            push(
                &mut out,
                &format!("{key}.peak_rss_bytes"),
                LowerIsBetter,
                get_f64(p, &["peak_rss_bytes"]),
            );
        }
    }
    extract_hists(doc, &mut out);
    out
}

/// Fuzz-family metrics (`localias-bench-fuzz/v*`): throughput plus the
/// per-backend, per-mode false-positive rates.
fn extract_fuzz(doc: &Value) -> Vec<Extracted> {
    use Direction::*;
    let mut out = Vec::new();
    push(
        &mut out,
        "modules_per_sec",
        HigherIsBetter,
        get_f64(doc, &["modules_per_sec"]),
    );
    push(
        &mut out,
        "wall_seconds",
        LowerIsBetter,
        get_f64(doc, &["wall_seconds"]),
    );
    if let Some(rates) = doc.get("fp_rates").and_then(Value::as_arr) {
        for entry in rates {
            let Some(backend) = entry.get("backend").and_then(Value::as_str) else {
                continue;
            };
            let Some(Value::Obj(modes)) = entry.get("modes") else {
                continue;
            };
            for (mode, st) in modes {
                push(
                    &mut out,
                    &format!("fp_rate.{backend}.{mode}"),
                    LowerIsBetter,
                    get_f64(st, &["rate"]),
                );
            }
        }
    }
    extract_hists(doc, &mut out);
    out
}

/// Extracts the schema string and its family prefix (the part before
/// the `/vN` version suffix).
fn schema_of(doc: &Value, label: &str) -> Result<(String, String), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{label}: missing or non-string \"schema\" field"))?
        .to_string();
    let family = schema
        .split_once('/')
        .map(|(f, _)| f.to_string())
        .unwrap_or_else(|| schema.clone());
    Ok((schema, family))
}

fn extract(family: &str, doc: &Value) -> Result<Vec<Extracted>, String> {
    match family {
        "localias-bench-experiment" => Ok(extract_experiment(doc)),
        "localias-bench-intra" => Ok(extract_intra(doc)),
        "localias-bench-watch" => Ok(extract_watch(doc)),
        "localias-bench-alias" => Ok(extract_alias(doc)),
        "localias-bench-scale" => Ok(extract_scale(doc)),
        "localias-bench-fuzz" => Ok(extract_fuzz(doc)),
        other => Err(format!(
            "unknown bench schema family {other:?} — bench-diff understands \
             experiment, intra, watch, alias, scale, and fuzz artifacts"
        )),
    }
}

/// Compares two bench artifacts of the same schema family.
///
/// `threshold_pct` bounds how much any metric may move in its worse
/// direction; pass [`DEFAULT_THRESHOLD_PCT`] for the standard gate.
pub fn diff_benches(
    old_text: &str,
    new_text: &str,
    threshold_pct: f64,
) -> Result<DiffReport, String> {
    if threshold_pct.is_nan() || threshold_pct < 0.0 {
        return Err(format!(
            "threshold must be a non-negative percent, got {threshold_pct}"
        ));
    }
    let old_doc = json::parse(old_text).map_err(|e| format!("old artifact: {e}"))?;
    let new_doc = json::parse(new_text).map_err(|e| format!("new artifact: {e}"))?;
    let (old_schema, old_family) = schema_of(&old_doc, "old artifact")?;
    let (new_schema, new_family) = schema_of(&new_doc, "new artifact")?;
    if old_family != new_family {
        return Err(format!(
            "schema family mismatch: old is {old_schema:?}, new is {new_schema:?} — \
             bench-diff compares artifacts from the same harness"
        ));
    }
    let old_metrics = extract(&old_family, &old_doc)?;
    let new_metrics = extract(&new_family, &new_doc)?;

    let mut metrics = Vec::new();
    let mut skipped = Vec::new();
    for (name, direction, old) in &old_metrics {
        match new_metrics.iter().find(|(n, ..)| n == name) {
            Some(&(_, _, new)) => metrics.push(MetricDiff {
                name: name.clone(),
                old: *old,
                new,
                direction: *direction,
            }),
            None => skipped.push(format!("old:{name}")),
        }
    }
    for (name, ..) in &new_metrics {
        if !old_metrics.iter().any(|(n, ..)| n == name) {
            skipped.push(format!("new:{name}"));
        }
    }
    Ok(DiffReport {
        family: old_family,
        schemas: (old_schema, new_schema),
        threshold_pct,
        metrics,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment_doc(mps: f64, check: f64, p95: u64) -> String {
        format!(
            r#"{{
  "schema": "localias-bench-experiment/v6",
  "modules_per_second": {mps},
  "wall_seconds": 1.0,
  "phase_cpu_seconds": {{"parse": 0.5, "check": {check}, "confine": 0.25}},
  "cache": {{"hits": 580, "misses": 9, "load_seconds": 0.01, "store_seconds": 0.02}},
  "hist": {{
    "analyze.module": {{"count": 589, "sum_ns": 100, "min_ns": 1, "max_ns": 9000,
      "p50_ns": 100, "p90_ns": 200, "p95_ns": {p95}, "p99_ns": 400, "buckets": [[7,589]]}},
    "fuzz.execute": {{"count": 0, "sum_ns": 0, "min_ns": 0, "max_ns": 0,
      "p50_ns": 0, "p90_ns": 0, "p95_ns": 0, "p99_ns": 0, "buckets": []}}
  }}
}}"#
        )
    }

    #[test]
    fn self_compare_is_clean() {
        let doc = experiment_doc(1000.0, 0.75, 300);
        let report = diff_benches(&doc, &doc, DEFAULT_THRESHOLD_PCT).unwrap();
        assert!(report.regressions().is_empty(), "{}", report.render_table());
        assert!(!report.metrics.is_empty());
        // Every delta is exactly zero on a self-compare.
        for m in &report.metrics {
            assert_eq!(m.delta_pct(), 0.0, "{}", m.name);
        }
        // Zero-sample histograms are not compared.
        assert!(report
            .metrics
            .iter()
            .all(|m| !m.name.contains("fuzz.execute")));
    }

    #[test]
    fn throughput_drop_past_threshold_regresses() {
        let old = experiment_doc(1000.0, 0.75, 300);
        let new = experiment_doc(800.0, 0.75, 300);
        let report = diff_benches(&old, &new, 10.0).unwrap();
        let regs = report.regressions();
        assert_eq!(regs.len(), 1, "{}", report.render_table());
        assert_eq!(regs[0].name, "modules_per_second");
        assert!((regs[0].delta_pct() - 20.0).abs() < 1e-9);

        // The same drop under a looser threshold passes.
        let relaxed = diff_benches(&old, &new, 25.0).unwrap();
        assert!(relaxed.regressions().is_empty());
    }

    #[test]
    fn latency_and_percentile_growth_regress() {
        let old = experiment_doc(1000.0, 0.75, 300);
        let new = experiment_doc(1000.0, 1.5, 600);
        let report = diff_benches(&old, &new, 10.0).unwrap();
        let names: Vec<&str> = report
            .regressions()
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert!(names.contains(&"phase_cpu_seconds.check"), "{names:?}");
        assert!(names.contains(&"hist.analyze.module.p95_ns"), "{names:?}");
        // Throughput didn't move; latency improvements are not flagged.
        assert!(!names.contains(&"modules_per_second"), "{names:?}");
    }

    #[test]
    fn improvements_are_not_regressions() {
        let old = experiment_doc(1000.0, 1.5, 600);
        let new = experiment_doc(2000.0, 0.5, 200);
        let report = diff_benches(&old, &new, 10.0).unwrap();
        assert!(report.regressions().is_empty(), "{}", report.render_table());
    }

    #[test]
    fn family_mismatch_is_an_error() {
        let exp = experiment_doc(1000.0, 0.75, 300);
        let intra = r#"{"schema": "localias-bench-intra/v3",
            "sequential_seconds": 1.0, "parallel_seconds": 0.5, "speedup": 2.0}"#;
        let err = diff_benches(&exp, intra, 10.0).unwrap_err();
        assert!(err.contains("schema family mismatch"), "{err}");
        // Same family, different version: compares the intersection.
        let v5 = exp.replace("experiment/v6", "experiment/v5");
        let report = diff_benches(&v5, &exp, 10.0).unwrap();
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn zero_baseline_rates_must_stay_zero() {
        let doc = |rate: f64| {
            format!(
                r#"{{"schema": "localias-bench-fuzz/v2", "modules_per_sec": 500.0,
                 "wall_seconds": 4.0,
                 "fp_rates": [{{"backend": "steensgaard",
                   "modes": {{"no_confine": {{"rate": {rate}}}}}}}]}}"#
            )
        };
        let clean = diff_benches(&doc(0.0), &doc(0.0), 10.0).unwrap();
        assert!(clean.regressions().is_empty());
        let dirty = diff_benches(&doc(0.0), &doc(0.25), 10.0).unwrap();
        let regs = dirty.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "fp_rate.steensgaard.no_confine");
    }

    #[test]
    fn report_json_is_machine_readable() {
        let old = experiment_doc(1000.0, 0.75, 300);
        let new = experiment_doc(800.0, 0.75, 300);
        let report = diff_benches(&old, &new, 10.0).unwrap();
        let doc = json::parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("localias-bench-diff/v1")
        );
        assert_eq!(doc.get("regressions").and_then(Value::as_u64), Some(1));
        let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
        let mps = metrics
            .iter()
            .find(|m| m.get("name").and_then(Value::as_str) == Some("modules_per_second"))
            .unwrap();
        assert_eq!(mps.get("regressed"), Some(&Value::Bool(true)));
    }

    #[test]
    fn table_renders_verdicts() {
        let old = experiment_doc(1000.0, 0.75, 300);
        let new = experiment_doc(800.0, 0.75, 300);
        let report = diff_benches(&old, &new, 10.0).unwrap();
        let table = report.render_table();
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("modules_per_second"), "{table}");
        assert!(table.contains("1 metric(s) regressed past 10%"), "{table}");
    }
}
