//! Incremental analysis cache: content-addressed per-module results with
//! an on-disk store, so a corpus sweep only re-analyzes modules whose
//! source actually changed since the last sweep.
//!
//! # Keying
//!
//! The cache key is a 128-bit FNV-1a fingerprint of the module's
//! *canonical* source — the [`localias_ast::pretty`] rendering of its
//! parse tree — mixed with [`ANALYSIS_VERSION`] and the (seed-independent)
//! analysis configuration. Canonicalizing through the pretty printer makes
//! the key insensitive to comments and formatting, and the printer's
//! fixpoint guarantee (`print ∘ parse ∘ print = print`, pinned by
//! `tests/pretty_stability.rs`) makes it stable across round trips.
//!
//! Because canonicalization requires a parse, every entry also remembers
//! the raw-source fingerprint of the text that produced it. An unchanged
//! module hits on the raw fingerprint without being parsed at all — the
//! fast path a fully warm sweep takes for all 589 modules. A raw miss
//! falls back to the canonical fingerprint (catching comment-only or
//! whitespace-only edits) before counting as a true miss.
//!
//! A lookup is a hit *only* on an exact fingerprint match; the raw-path
//! shortcut is sound because the canonical fingerprint is a pure function
//! of the raw source.
//!
//! # Store
//!
//! The store is a directory (default `.localias-cache/`) holding one
//! JSON-lines file, `store.jsonl`: a schema header line followed by one
//! entry per `(raw, canonical)` fingerprint pair. It is read once at sweep
//! start and atomically rewritten (temp file + rename) at sweep end. Any
//! deviation from the expected shape — truncation, corruption, a schema or
//! [`ANALYSIS_VERSION`] mismatch — discards the whole store with a warning
//! on stderr and the sweep proceeds cold; a cache can never panic a sweep
//! or change its results.

use crate::{ModuleResult, PhaseTimes};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Bumped whenever any analysis stage changes observable results, so
/// stale caches from older binaries can never serve wrong answers. Mixed
/// into every canonical fingerprint *and* written in the store header.
pub const ANALYSIS_VERSION: u32 = 1;

/// Store schema identifier (the header line pins this plus the version).
const STORE_SCHEMA: &str = "localias-cache/v1";

/// Seed-independent description of what one cached result covers. Keyed
/// into the fingerprint so a config change invalidates rather than hits.
const ANALYSIS_CONFIG: &str = "modes=no_confine,confine,all_strong";

/// File name of the store inside the cache directory.
pub const STORE_FILE: &str = "store.jsonl";

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

fn fnv1a(mut h: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of a module's raw source text (the pre-parse fast path).
pub fn source_fingerprint(source: &str) -> u128 {
    fnv1a(fnv1a(FNV_OFFSET, b"raw;"), source.as_bytes())
}

/// Canonical fingerprint of a parsed module: hash of its pretty-printed
/// source, domain-separated by the analysis version and configuration.
/// Deliberately independent of the corpus seed and the module's name.
pub fn module_fingerprint(m: &localias_ast::Module) -> u128 {
    let canon = localias_ast::pretty::print_module(m);
    let domain = format!("{STORE_SCHEMA};av{ANALYSIS_VERSION};{ANALYSIS_CONFIG};");
    fnv1a(fnv1a(FNV_OFFSET, domain.as_bytes()), canon.as_bytes())
}

/// Where (whether) a sweep keeps its cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachePolicy {
    /// No cache: every sweep is cold and nothing touches the disk.
    Disabled,
    /// Cache under the given directory.
    Dir(PathBuf),
}

impl CachePolicy {
    /// The default policy: caching on, under `.localias-cache/` in the
    /// current directory.
    pub fn enabled_default() -> CachePolicy {
        CachePolicy::Dir(PathBuf::from(".localias-cache"))
    }
}

/// One cached per-module outcome: the error triple plus the phase times
/// of the run that produced it (replayed into warm reports so the phase
/// breakdown keeps describing the analysis cost the results represent).
#[derive(Debug, Clone, Copy)]
pub struct CachedOutcome {
    /// Errors without confine inference.
    pub no_confine: usize,
    /// Errors with confine inference.
    pub confine: usize,
    /// Errors assuming all updates strong.
    pub all_strong: usize,
    /// Phase times of the original (cold) measurement.
    pub times: PhaseTimes,
}

impl CachedOutcome {
    /// Captures a freshly measured result.
    pub fn of(r: &ModuleResult, times: PhaseTimes) -> CachedOutcome {
        CachedOutcome {
            no_confine: r.no_confine,
            confine: r.confine,
            all_strong: r.all_strong,
            times,
        }
    }

    /// Rehydrates a [`ModuleResult`] under the *current* module name
    /// (names are seed-dependent and not part of the key).
    pub fn to_result(self, name: &str) -> ModuleResult {
        ModuleResult {
            name: name.to_string(),
            no_confine: self.no_confine,
            confine: self.confine,
            all_strong: self.all_strong,
        }
    }
}

/// Cache statistics for one sweep, reported in
/// `localias-bench-experiment/v2` documents.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Modules served from the cache (raw or canonical fingerprint).
    pub hits: usize,
    /// Modules analyzed from scratch this sweep.
    pub misses: usize,
    /// Cache directory, as given.
    pub dir: String,
    /// Time spent reading + parsing the store at sweep start.
    pub load: Duration,
    /// Time spent serializing + atomically rewriting it at sweep end.
    pub store: Duration,
}

/// The in-memory index over the on-disk store.
#[derive(Debug)]
pub struct AnalysisCache {
    dir: PathBuf,
    /// canonical fingerprint → outcome.
    entries: HashMap<u128, CachedOutcome>,
    /// raw-source fingerprint → canonical fingerprint.
    by_raw: HashMap<u128, u128>,
    load_time: Duration,
    store_time: Duration,
    dirty: bool,
}

impl AnalysisCache {
    /// Loads the store under `dir`, or starts empty when there is none.
    /// A corrupt, truncated, or version-mismatched store is discarded
    /// with a warning — never an error.
    pub fn load(dir: &Path) -> AnalysisCache {
        let t0 = Instant::now();
        let mut cache = AnalysisCache {
            dir: dir.to_path_buf(),
            entries: HashMap::new(),
            by_raw: HashMap::new(),
            load_time: Duration::ZERO,
            store_time: Duration::ZERO,
            dirty: false,
        };
        let path = dir.join(STORE_FILE);
        match std::fs::read_to_string(&path) {
            Ok(text) => match parse_store(&text) {
                Ok((entries, by_raw)) => {
                    cache.entries = entries;
                    cache.by_raw = by_raw;
                }
                Err(why) => {
                    eprintln!(
                        "localias-bench: warning: ignoring cache {} ({why}); running cold",
                        path.display()
                    );
                    // The broken store will be atomically replaced at
                    // sweep end even if this sweep adds nothing new.
                    cache.dirty = true;
                }
            },
            // No store yet (first run) — silently cold.
            Err(_) => {}
        }
        cache.load_time = t0.elapsed();
        cache
    }

    /// The directory this cache persists under, for display.
    pub fn dir_display(&self) -> String {
        self.dir.display().to_string()
    }

    /// Time [`AnalysisCache::load`] spent on the store file.
    pub fn load_time(&self) -> Duration {
        self.load_time
    }

    /// Time the last [`AnalysisCache::persist`] spent writing.
    pub fn store_time(&self) -> Duration {
        self.store_time
    }

    /// Number of distinct cached module outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fast-path lookup by raw-source fingerprint (no parse needed).
    pub fn lookup_raw(&self, raw: u128) -> Option<&CachedOutcome> {
        self.entries.get(self.by_raw.get(&raw)?)
    }

    /// Lookup by canonical fingerprint.
    pub fn lookup_fp(&self, fp: u128) -> Option<&CachedOutcome> {
        self.entries.get(&fp)
    }

    /// Records a freshly measured outcome under both fingerprints.
    pub fn record(&mut self, fp: u128, raw: u128, outcome: CachedOutcome) {
        self.entries.insert(fp, outcome);
        self.by_raw.insert(raw, fp);
        self.dirty = true;
    }

    /// Remembers that `raw` canonicalizes to the already-cached `fp`, so
    /// the next sweep takes the no-parse fast path for this source.
    pub fn alias_raw(&mut self, raw: u128, fp: u128) {
        if self.by_raw.get(&raw) != Some(&fp) {
            self.by_raw.insert(raw, fp);
            self.dirty = true;
        }
    }

    /// Atomically rewrites the on-disk store (temp file + rename in the
    /// same directory). A no-op when nothing changed since load.
    pub fn persist(&mut self) -> std::io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        let t0 = Instant::now();
        let mut out = String::with_capacity(64 + self.by_raw.len() * 128);
        out.push_str(&header_line());
        out.push('\n');
        // One line per raw alias; sorted so the store is byte-stable for
        // a given contents regardless of hash-map iteration order.
        let mut aliases: Vec<(&u128, &u128)> = self.by_raw.iter().collect();
        aliases.sort();
        for (raw, fp) in aliases {
            let Some(e) = self.entries.get(fp) else {
                continue;
            };
            out.push_str(&entry_line(*fp, *raw, e));
            out.push('\n');
        }
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self
            .dir
            .join(format!("{STORE_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, &out)?;
        let result = std::fs::rename(&tmp, self.dir.join(STORE_FILE));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result?;
        self.dirty = false;
        self.store_time = t0.elapsed();
        Ok(())
    }
}

fn header_line() -> String {
    format!("{{\"schema\":\"{STORE_SCHEMA}\",\"analysis_version\":{ANALYSIS_VERSION}}}")
}

fn entry_line(fp: u128, raw: u128, e: &CachedOutcome) -> String {
    format!(
        "{{\"fp\":\"{fp:032x}\",\"raw\":\"{raw:032x}\",\"nc\":{},\"cf\":{},\"as\":{},\
         \"parse_ns\":{},\"check_ns\":{},\"confine_ns\":{}}}",
        e.no_confine,
        e.confine,
        e.all_strong,
        e.times.parse.as_nanos(),
        e.times.check.as_nanos(),
        e.times.confine.as_nanos(),
    )
}

type StoreIndex = (HashMap<u128, CachedOutcome>, HashMap<u128, u128>);

/// Strictly parses a store file. Any deviation from the written shape is
/// an error (the caller discards the whole store): a half-written or
/// hand-edited store must degrade to a cold run, not half-hit.
fn parse_store(text: &str) -> Result<StoreIndex, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == header_line() => {}
        Some(_) => return Err("schema or analysis-version mismatch".into()),
        None => return Err("empty store".into()),
    }
    if !text.ends_with('\n') {
        return Err("truncated store (no trailing newline)".into());
    }
    let mut entries = HashMap::new();
    let mut by_raw = HashMap::new();
    for (n, line) in lines.enumerate() {
        let (fp, raw, outcome) =
            parse_entry(line).ok_or_else(|| format!("malformed entry on line {}", n + 2))?;
        entries.insert(fp, outcome);
        by_raw.insert(raw, fp);
    }
    Ok((entries, by_raw))
}

/// A minimal strict scanner over one entry line (we parse only what
/// [`entry_line`] writes; anything else is corruption).
struct Scan<'a>(&'a str);

impl<'a> Scan<'a> {
    fn lit(&mut self, l: &str) -> Option<()> {
        self.0 = self.0.strip_prefix(l)?;
        Some(())
    }

    fn hex(&mut self) -> Option<u128> {
        let end = self.0.find(|c: char| !c.is_ascii_hexdigit())?;
        let (digits, rest) = self.0.split_at(end);
        if digits.len() != 32 {
            return None;
        }
        self.0 = rest;
        u128::from_str_radix(digits, 16).ok()
    }

    fn int(&mut self) -> Option<u64> {
        let end = self
            .0
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.0.len());
        let (digits, rest) = self.0.split_at(end);
        if digits.is_empty() {
            return None;
        }
        self.0 = rest;
        digits.parse().ok()
    }

    fn end(&self) -> Option<()> {
        self.0.is_empty().then_some(())
    }
}

fn parse_entry(line: &str) -> Option<(u128, u128, CachedOutcome)> {
    let mut s = Scan(line);
    s.lit("{\"fp\":\"")?;
    let fp = s.hex()?;
    s.lit("\",\"raw\":\"")?;
    let raw = s.hex()?;
    s.lit("\",\"nc\":")?;
    let nc = s.int()?;
    s.lit(",\"cf\":")?;
    let cf = s.int()?;
    s.lit(",\"as\":")?;
    let as_ = s.int()?;
    s.lit(",\"parse_ns\":")?;
    let parse = s.int()?;
    s.lit(",\"check_ns\":")?;
    let check = s.int()?;
    s.lit(",\"confine_ns\":")?;
    let confine = s.int()?;
    s.lit("}")?;
    s.end()?;
    Some((
        fp,
        raw,
        CachedOutcome {
            no_confine: nc as usize,
            confine: cf as usize,
            all_strong: as_ as usize,
            times: PhaseTimes {
                parse: Duration::from_nanos(parse),
                check: Duration::from_nanos(check),
                confine: Duration::from_nanos(confine),
            },
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_ast::parse_module;

    #[test]
    fn canonical_fingerprint_ignores_comments_and_whitespace() {
        let a = parse_module("a", "int g;\nvoid f() { g = 1; }\n").unwrap();
        let b = parse_module(
            "b",
            "// a comment\nint   g;\nvoid f()   {\n\n    g = 1;\n}\n",
        )
        .unwrap();
        assert_eq!(module_fingerprint(&a), module_fingerprint(&b));

        let c = parse_module("c", "int g;\nvoid f() { g = 2; }\n").unwrap();
        assert_ne!(module_fingerprint(&a), module_fingerprint(&c));
    }

    #[test]
    fn raw_fingerprint_is_exact() {
        assert_eq!(source_fingerprint("int g;"), source_fingerprint("int g;"));
        assert_ne!(source_fingerprint("int g;"), source_fingerprint("int g; "));
    }

    #[test]
    fn entry_lines_round_trip() {
        let outcome = CachedOutcome {
            no_confine: 22,
            confine: 16,
            all_strong: 15,
            times: PhaseTimes {
                parse: Duration::from_nanos(123_456),
                check: Duration::from_nanos(789),
                confine: Duration::from_nanos(1_000_000_001),
            },
        };
        let line = entry_line(u128::MAX - 7, 42, &outcome);
        let (fp, raw, back) = parse_entry(&line).expect("round trip");
        assert_eq!(fp, u128::MAX - 7);
        assert_eq!(raw, 42);
        assert_eq!(
            (back.no_confine, back.confine, back.all_strong),
            (22, 16, 15)
        );
        assert_eq!(back.times.parse, outcome.times.parse);
        assert_eq!(back.times.confine, outcome.times.confine);
    }

    #[test]
    fn malformed_entries_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"fp\":\"zz\",...}",
            "{\"fp\":\"00000000000000000000000000000000\",\"raw\":\"0\",\"nc\":1,\"cf\":1,\"as\":1,\"parse_ns\":1,\"check_ns\":1,\"confine_ns\":1}",
            "garbage",
        ] {
            assert!(parse_entry(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn store_header_mismatch_is_an_error() {
        assert!(parse_store("{\"schema\":\"localias-cache/v0\",\"analysis_version\":1}\n").is_err());
        assert!(parse_store("").is_err());
        let good = format!("{}\n", header_line());
        assert!(parse_store(&good).is_ok());
        // Truncation (missing trailing newline) is corruption.
        assert!(parse_store(good.trim_end()).is_err());
    }
}
