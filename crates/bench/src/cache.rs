//! Incremental analysis cache: content-addressed per-module results with
//! an on-disk store, so a corpus sweep only re-analyzes modules whose
//! source actually changed since the last sweep.
//!
//! # Keying
//!
//! The cache key is a 128-bit FNV-1a fingerprint of the module's
//! *canonical* source — the [`localias_ast::pretty`] rendering of its
//! parse tree — mixed with [`ANALYSIS_VERSION`] and the (seed-independent)
//! analysis configuration. Canonicalizing through the pretty printer makes
//! the key insensitive to comments and formatting, and the printer's
//! fixpoint guarantee (`print ∘ parse ∘ print = print`, pinned by
//! `tests/pretty_stability.rs`) makes it stable across round trips.
//!
//! Because canonicalization requires a parse, every entry also remembers
//! the raw-source fingerprint of the text that produced it. An unchanged
//! module hits on the raw fingerprint without being parsed at all — the
//! fast path a fully warm sweep takes for all 589 modules. A raw miss
//! falls back to the canonical fingerprint (catching comment-only or
//! whitespace-only edits) before counting as a true miss.
//!
//! A lookup is a hit *only* on an exact fingerprint match; the raw-path
//! shortcut is sound because the canonical fingerprint is a pure function
//! of the raw source.
//!
//! # Store
//!
//! The store is a directory (default `.localias-cache/`) holding one
//! JSON-lines file, `store.jsonl`: a schema header line followed by one
//! entry per `(raw, canonical)` fingerprint pair. It is read once at sweep
//! start and atomically rewritten (temp file + rename) at sweep end. Any
//! deviation from the expected shape — truncation, corruption, a schema or
//! [`ANALYSIS_VERSION`] mismatch — discards the whole store with a warning
//! on stderr and the sweep proceeds cold; a cache can never panic a sweep
//! or change its results.

use crate::{ModuleResult, PhaseTimes};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Bumped whenever any analysis stage changes observable results, so
/// stale caches from older binaries can never serve wrong answers. Mixed
/// into every canonical fingerprint *and* written in the store header.
///
/// v2: the checker moved to the frozen-analysis, call-graph-scheduled
/// pipeline and the store grew the generic `"v"` payload (see
/// [`CachedValues`]); every v1 store is discarded whole on load.
pub const ANALYSIS_VERSION: u32 = 2;

/// Store schema identifier (the header line pins this plus the version).
const STORE_SCHEMA: &str = "localias-cache/v2";

/// Seed-independent description of what one cached result covers. Keyed
/// into the fingerprint so a config change invalidates rather than hits.
const ANALYSIS_CONFIG: &str = "modes=no_confine,confine,all_strong";

/// Seed-independent description of what one §8 precision entry covers.
const PRECISION_CONFIG: &str = "analyses=steensgaard,andersen;metric=local-pair-aliasing";

/// File name of the store inside the cache directory.
pub const STORE_FILE: &str = "store.jsonl";

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

fn fnv1a(mut h: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of a module's raw source text (the pre-parse fast path).
pub fn source_fingerprint(source: &str) -> u128 {
    fnv1a(fnv1a(FNV_OFFSET, b"raw;"), source.as_bytes())
}

/// Fingerprint of one §8 precision-sweep subject. Domain-separated from
/// [`source_fingerprint`] (and versioned like [`module_fingerprint`]) so
/// experiment and precision entries can share one store without a key of
/// one kind ever hitting an entry of the other.
pub fn precision_fingerprint(source: &str) -> u128 {
    let domain = format!("raw;precision;{STORE_SCHEMA};av{ANALYSIS_VERSION};{PRECISION_CONFIG};");
    fnv1a(fnv1a(FNV_OFFSET, domain.as_bytes()), source.as_bytes())
}

/// Canonical fingerprint of a parsed module: hash of its pretty-printed
/// source, domain-separated by the analysis version and configuration.
/// Deliberately independent of the corpus seed and the module's name.
pub fn module_fingerprint(m: &localias_ast::Module) -> u128 {
    let canon = localias_ast::pretty::print_module(m);
    let domain = format!("{STORE_SCHEMA};av{ANALYSIS_VERSION};{ANALYSIS_CONFIG};");
    fnv1a(fnv1a(FNV_OFFSET, domain.as_bytes()), canon.as_bytes())
}

/// Where (whether) a sweep keeps its cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachePolicy {
    /// No cache: every sweep is cold and nothing touches the disk.
    Disabled,
    /// Cache under the given directory.
    Dir(PathBuf),
}

impl CachePolicy {
    /// The default policy: caching on, under `.localias-cache/` in the
    /// current directory.
    pub fn enabled_default() -> CachePolicy {
        CachePolicy::Dir(PathBuf::from(".localias-cache"))
    }
}

/// The generic store payload: six unsigned values per entry. What they
/// mean is the *keying domain's* business — experiment entries pack a
/// [`CachedOutcome`], precision entries a [`PrecisionOutcome`] — and the
/// domain-separated fingerprints guarantee a key of one kind never
/// resolves to values of the other.
pub type CachedValues = [u64; 6];

/// One cached per-module outcome: the error triple plus the phase times
/// of the run that produced it (replayed into warm reports so the phase
/// breakdown keeps describing the analysis cost the results represent).
#[derive(Debug, Clone, Copy)]
pub struct CachedOutcome {
    /// Errors without confine inference.
    pub no_confine: usize,
    /// Errors with confine inference.
    pub confine: usize,
    /// Errors assuming all updates strong.
    pub all_strong: usize,
    /// Phase times of the original (cold) measurement.
    pub times: PhaseTimes,
}

impl CachedOutcome {
    /// Captures a freshly measured result.
    pub fn of(r: &ModuleResult, times: PhaseTimes) -> CachedOutcome {
        CachedOutcome {
            no_confine: r.no_confine,
            confine: r.confine,
            all_strong: r.all_strong,
            times,
        }
    }

    /// Rehydrates a [`ModuleResult`] under the *current* module name
    /// (names are seed-dependent and not part of the key).
    pub fn to_result(self, name: &str) -> ModuleResult {
        ModuleResult {
            name: name.to_string(),
            no_confine: self.no_confine,
            confine: self.confine,
            all_strong: self.all_strong,
        }
    }

    /// Packs into the generic store payload.
    pub fn to_values(self) -> CachedValues {
        [
            self.no_confine as u64,
            self.confine as u64,
            self.all_strong as u64,
            self.times.parse.as_nanos() as u64,
            self.times.check.as_nanos() as u64,
            self.times.confine.as_nanos() as u64,
        ]
    }

    /// Unpacks from the generic store payload.
    pub fn from_values(v: CachedValues) -> CachedOutcome {
        CachedOutcome {
            no_confine: v[0] as usize,
            confine: v[1] as usize,
            all_strong: v[2] as usize,
            times: PhaseTimes {
                parse: Duration::from_nanos(v[3]),
                check: Duration::from_nanos(v[4]),
                confine: Duration::from_nanos(v[5]),
            },
        }
    }
}

/// One cached §8 precision-sweep outcome (per random subject module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionOutcome {
    /// Pointer-local pairs compared in the module.
    pub pairs: u64,
    /// Pairs aliased under unification (Steensgaard).
    pub aliased_uni: u64,
    /// Pairs aliased under inclusion (Andersen).
    pub aliased_incl: u64,
    /// Whether any pair is conflated only by unification.
    pub gap: bool,
}

impl PrecisionOutcome {
    /// Packs into the generic store payload.
    pub fn to_values(self) -> CachedValues {
        [
            self.pairs,
            self.aliased_uni,
            self.aliased_incl,
            self.gap as u64,
            0,
            0,
        ]
    }

    /// Unpacks from the generic store payload.
    pub fn from_values(v: CachedValues) -> PrecisionOutcome {
        PrecisionOutcome {
            pairs: v[0],
            aliased_uni: v[1],
            aliased_incl: v[2],
            gap: v[3] != 0,
        }
    }
}

/// Cache statistics for one sweep, reported in
/// `localias-bench-experiment/v2` documents.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Modules served from the cache (raw or canonical fingerprint).
    pub hits: usize,
    /// Modules analyzed from scratch this sweep.
    pub misses: usize,
    /// Cache directory, as given.
    pub dir: String,
    /// Time spent reading + parsing the store at sweep start.
    pub load: Duration,
    /// Time spent serializing + atomically rewriting it at sweep end.
    pub store: Duration,
}

/// The in-memory index over the on-disk store.
#[derive(Debug)]
pub struct AnalysisCache {
    dir: PathBuf,
    /// canonical fingerprint → generic payload.
    entries: HashMap<u128, CachedValues>,
    /// raw-source fingerprint → canonical fingerprint.
    by_raw: HashMap<u128, u128>,
    load_time: Duration,
    store_time: Duration,
    dirty: bool,
}

impl AnalysisCache {
    /// Loads the store under `dir`, or starts empty when there is none.
    /// A corrupt, truncated, or version-mismatched store is discarded
    /// with a warning — never an error.
    pub fn load(dir: &Path) -> AnalysisCache {
        let t0 = Instant::now();
        let mut cache = AnalysisCache {
            dir: dir.to_path_buf(),
            entries: HashMap::new(),
            by_raw: HashMap::new(),
            load_time: Duration::ZERO,
            store_time: Duration::ZERO,
            dirty: false,
        };
        let path = dir.join(STORE_FILE);
        // A read error means no store yet (first run) — silently cold.
        if let Ok(text) = std::fs::read_to_string(&path) {
            match parse_store(&text) {
                Ok((entries, by_raw)) => {
                    cache.entries = entries;
                    cache.by_raw = by_raw;
                }
                Err(why) => {
                    eprintln!(
                        "localias-bench: warning: ignoring cache {} ({why}); running cold",
                        path.display()
                    );
                    // The broken store will be atomically replaced at
                    // sweep end even if this sweep adds nothing new.
                    cache.dirty = true;
                }
            }
        }
        cache.load_time = t0.elapsed();
        cache
    }

    /// The directory this cache persists under, for display.
    pub fn dir_display(&self) -> String {
        self.dir.display().to_string()
    }

    /// Time [`AnalysisCache::load`] spent on the store file.
    pub fn load_time(&self) -> Duration {
        self.load_time
    }

    /// Time the last [`AnalysisCache::persist`] spent writing.
    pub fn store_time(&self) -> Duration {
        self.store_time
    }

    /// Number of distinct cached module outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fast-path lookup by raw-source fingerprint (no parse needed).
    pub fn lookup_raw(&self, raw: u128) -> Option<CachedOutcome> {
        self.lookup_values(*self.by_raw.get(&raw)?)
            .map(CachedOutcome::from_values)
    }

    /// Lookup by canonical fingerprint.
    pub fn lookup_fp(&self, fp: u128) -> Option<CachedOutcome> {
        self.lookup_values(fp).map(CachedOutcome::from_values)
    }

    /// Records a freshly measured outcome under both fingerprints.
    pub fn record(&mut self, fp: u128, raw: u128, outcome: CachedOutcome) {
        self.record_values(fp, raw, outcome.to_values());
    }

    /// Generic lookup of the raw payload under a canonical key. Callers
    /// of a given keying domain (e.g. [`precision_fingerprint`]) own the
    /// interpretation of the six values.
    pub fn lookup_values(&self, fp: u128) -> Option<CachedValues> {
        self.entries.get(&fp).copied()
    }

    /// Generic record of a raw payload under `(fp, raw)`.
    pub fn record_values(&mut self, fp: u128, raw: u128, values: CachedValues) {
        self.entries.insert(fp, values);
        self.by_raw.insert(raw, fp);
        self.dirty = true;
    }

    /// Remembers that `raw` canonicalizes to the already-cached `fp`, so
    /// the next sweep takes the no-parse fast path for this source.
    pub fn alias_raw(&mut self, raw: u128, fp: u128) {
        if self.by_raw.get(&raw) != Some(&fp) {
            self.by_raw.insert(raw, fp);
            self.dirty = true;
        }
    }

    /// Atomically rewrites the on-disk store (temp file + rename in the
    /// same directory). A no-op when nothing changed since load.
    pub fn persist(&mut self) -> std::io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        let t0 = Instant::now();
        let mut out = String::with_capacity(64 + self.by_raw.len() * 128);
        out.push_str(&header_line());
        out.push('\n');
        // One line per raw alias; sorted so the store is byte-stable for
        // a given contents regardless of hash-map iteration order.
        let mut aliases: Vec<(&u128, &u128)> = self.by_raw.iter().collect();
        aliases.sort();
        for (raw, fp) in aliases {
            let Some(e) = self.entries.get(fp) else {
                continue;
            };
            out.push_str(&entry_line(*fp, *raw, e));
            out.push('\n');
        }
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self
            .dir
            .join(format!("{STORE_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, &out)?;
        let result = std::fs::rename(&tmp, self.dir.join(STORE_FILE));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result?;
        self.dirty = false;
        self.store_time = t0.elapsed();
        Ok(())
    }
}

fn header_line() -> String {
    format!("{{\"schema\":\"{STORE_SCHEMA}\",\"analysis_version\":{ANALYSIS_VERSION}}}")
}

fn entry_line(fp: u128, raw: u128, v: &CachedValues) -> String {
    format!(
        "{{\"fp\":\"{fp:032x}\",\"raw\":\"{raw:032x}\",\"v\":[{},{},{},{},{},{}]}}",
        v[0], v[1], v[2], v[3], v[4], v[5],
    )
}

type StoreIndex = (HashMap<u128, CachedValues>, HashMap<u128, u128>);

/// Strictly parses a store file. Any deviation from the written shape is
/// an error (the caller discards the whole store): a half-written or
/// hand-edited store must degrade to a cold run, not half-hit.
fn parse_store(text: &str) -> Result<StoreIndex, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == header_line() => {}
        Some(_) => return Err("schema or analysis-version mismatch".into()),
        None => return Err("empty store".into()),
    }
    if !text.ends_with('\n') {
        return Err("truncated store (no trailing newline)".into());
    }
    let mut entries = HashMap::new();
    let mut by_raw = HashMap::new();
    for (n, line) in lines.enumerate() {
        let (fp, raw, outcome) =
            parse_entry(line).ok_or_else(|| format!("malformed entry on line {}", n + 2))?;
        entries.insert(fp, outcome);
        by_raw.insert(raw, fp);
    }
    Ok((entries, by_raw))
}

/// A minimal strict scanner over one entry line (we parse only what
/// [`entry_line`] writes; anything else is corruption).
struct Scan<'a>(&'a str);

impl<'a> Scan<'a> {
    fn lit(&mut self, l: &str) -> Option<()> {
        self.0 = self.0.strip_prefix(l)?;
        Some(())
    }

    fn hex(&mut self) -> Option<u128> {
        let end = self.0.find(|c: char| !c.is_ascii_hexdigit())?;
        let (digits, rest) = self.0.split_at(end);
        if digits.len() != 32 {
            return None;
        }
        self.0 = rest;
        u128::from_str_radix(digits, 16).ok()
    }

    fn int(&mut self) -> Option<u64> {
        let end = self
            .0
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.0.len());
        let (digits, rest) = self.0.split_at(end);
        if digits.is_empty() {
            return None;
        }
        self.0 = rest;
        digits.parse().ok()
    }

    fn end(&self) -> Option<()> {
        self.0.is_empty().then_some(())
    }
}

fn parse_entry(line: &str) -> Option<(u128, u128, CachedValues)> {
    let mut s = Scan(line);
    s.lit("{\"fp\":\"")?;
    let fp = s.hex()?;
    s.lit("\",\"raw\":\"")?;
    let raw = s.hex()?;
    s.lit("\",\"v\":[")?;
    let mut v = [0u64; 6];
    for (i, slot) in v.iter_mut().enumerate() {
        if i > 0 {
            s.lit(",")?;
        }
        *slot = s.int()?;
    }
    s.lit("]}")?;
    s.end()?;
    Some((fp, raw, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_ast::parse_module;

    #[test]
    fn canonical_fingerprint_ignores_comments_and_whitespace() {
        let a = parse_module("a", "int g;\nvoid f() { g = 1; }\n").unwrap();
        let b = parse_module(
            "b",
            "// a comment\nint   g;\nvoid f()   {\n\n    g = 1;\n}\n",
        )
        .unwrap();
        assert_eq!(module_fingerprint(&a), module_fingerprint(&b));

        let c = parse_module("c", "int g;\nvoid f() { g = 2; }\n").unwrap();
        assert_ne!(module_fingerprint(&a), module_fingerprint(&c));
    }

    #[test]
    fn raw_fingerprint_is_exact() {
        assert_eq!(source_fingerprint("int g;"), source_fingerprint("int g;"));
        assert_ne!(source_fingerprint("int g;"), source_fingerprint("int g; "));
    }

    #[test]
    fn entry_lines_round_trip() {
        let outcome = CachedOutcome {
            no_confine: 22,
            confine: 16,
            all_strong: 15,
            times: PhaseTimes {
                parse: Duration::from_nanos(123_456),
                check: Duration::from_nanos(789),
                confine: Duration::from_nanos(1_000_000_001),
            },
        };
        let line = entry_line(u128::MAX - 7, 42, &outcome.to_values());
        let (fp, raw, v) = parse_entry(&line).expect("round trip");
        assert_eq!(fp, u128::MAX - 7);
        assert_eq!(raw, 42);
        let back = CachedOutcome::from_values(v);
        assert_eq!(
            (back.no_confine, back.confine, back.all_strong),
            (22, 16, 15)
        );
        assert_eq!(back.times.parse, outcome.times.parse);
        assert_eq!(back.times.confine, outcome.times.confine);
    }

    #[test]
    fn precision_outcomes_round_trip_through_values() {
        let p = PrecisionOutcome {
            pairs: 91,
            aliased_uni: 30,
            aliased_incl: 12,
            gap: true,
        };
        assert_eq!(PrecisionOutcome::from_values(p.to_values()), p);
        let line = entry_line(1, 2, &p.to_values());
        let (_, _, v) = parse_entry(&line).expect("round trip");
        assert_eq!(PrecisionOutcome::from_values(v), p);
    }

    #[test]
    fn malformed_entries_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"fp\":\"zz\",...}",
            // The v1 (PR-2) entry shape: named fields instead of the
            // generic payload. Must scan as corruption, never half-parse.
            "{\"fp\":\"00000000000000000000000000000000\",\"raw\":\"00000000000000000000000000000000\",\"nc\":1,\"cf\":1,\"as\":1,\"parse_ns\":1,\"check_ns\":1,\"confine_ns\":1}",
            // Wrong arity.
            "{\"fp\":\"00000000000000000000000000000000\",\"raw\":\"00000000000000000000000000000000\",\"v\":[1,2,3,4,5]}",
            "{\"fp\":\"00000000000000000000000000000000\",\"raw\":\"00000000000000000000000000000000\",\"v\":[1,2,3,4,5,6,7]}",
            "garbage",
        ] {
            assert!(parse_entry(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn store_header_mismatch_is_an_error() {
        assert!(
            parse_store("{\"schema\":\"localias-cache/v0\",\"analysis_version\":1}\n").is_err()
        );
        // The PR-2 store header: one version behind, discarded whole.
        assert!(
            parse_store("{\"schema\":\"localias-cache/v1\",\"analysis_version\":1}\n").is_err()
        );
        assert!(parse_store("").is_err());
        let good = format!("{}\n", header_line());
        assert!(parse_store(&good).is_ok());
        // Truncation (missing trailing newline) is corruption.
        assert!(parse_store(good.trim_end()).is_err());
    }

    #[test]
    fn fingerprint_domains_never_collide() {
        let src = "int g;\nvoid f() { g = 1; }\n";
        assert_ne!(
            source_fingerprint(src),
            precision_fingerprint(src),
            "precision keys are domain-separated from experiment keys"
        );
    }
}
