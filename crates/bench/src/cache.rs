//! Incremental analysis cache: content-addressed per-module results with
//! an on-disk store, so a corpus sweep only re-analyzes modules whose
//! source actually changed since the last sweep.
//!
//! # Keying
//!
//! The cache key is a 128-bit FNV-1a fingerprint of the module's
//! *canonical* source — the [`localias_ast::pretty`] rendering of its
//! parse tree — mixed with [`ANALYSIS_VERSION`] and the (seed-independent)
//! analysis configuration. Canonicalizing through the pretty printer makes
//! the key insensitive to comments and formatting, and the printer's
//! fixpoint guarantee (`print ∘ parse ∘ print = print`, pinned by
//! `tests/pretty_stability.rs`) makes it stable across round trips.
//!
//! Because canonicalization requires a parse, every entry also remembers
//! the raw-source fingerprint of the text that produced it. An unchanged
//! module hits on the raw fingerprint without being parsed at all — the
//! fast path a fully warm sweep takes for all 589 modules. A raw miss
//! falls back to the canonical fingerprint (catching comment-only or
//! whitespace-only edits) before counting as a true miss.
//!
//! A lookup is a hit *only* on an exact fingerprint match; the raw-path
//! shortcut is sound because the canonical fingerprint is a pure function
//! of the raw source.
//!
//! # Store: sharded, crash-safe, safe under concurrent writers
//!
//! The store is a directory (default `.localias-cache/`) holding N shard
//! files `shard-00.jsonl` … (default N = [`DEFAULT_SHARDS`], set with
//! `--cache-shards`). Entries are partitioned by canonical fingerprint
//! (`fp mod N`); each shard is a JSON-lines file — a schema header line
//! followed by one entry per `(raw, canonical)` fingerprint pair.
//!
//! *Loads are lock-free*: every `shard-*.jsonl` present is read at sweep
//! start, whatever N it was written under. A shard that fails the strict
//! parse — truncation, corruption, a schema or [`ANALYSIS_VERSION`]
//! mismatch — is *quarantined individually* (renamed to `<shard>.bad`)
//! with a warning; the rest of the store keeps serving hits. A cache can
//! never panic a sweep or change its results.
//!
//! *Persists are merge-on-write under an advisory lock*: for each shard
//! with new entries, the writer takes `shard-NN.lock` (created with
//! `create_new`, the portable flock analogue) with bounded exponential
//! backoff, re-reads the shard, unions it with its in-memory entries —
//! on-disk wins ties, and a shard header carrying a *newer*
//! `analysis_version` is left entirely alone — and atomically replaces
//! the file (temp + rename). If the lock cannot be acquired in time the
//! shard is skipped with a warning rather than blocking the sweep: the
//! unsaved entries are merely recomputed (or merged) by a later run.
//! Locks held by dead processes (the holder's pid is written into the
//! lockfile) are broken; orphaned `*.tmp.<pid>` files from crashed
//! writers are swept at load time once their writer is gone.
//!
//! Two sweeps sharing one cache directory — `experiment` and `precision`
//! side by side, or two CI shards over disjoint corpora — therefore lose
//! no entries: each persist folds the other's fresh entries into the
//! union instead of clobbering the store wholesale.
//!
//! A legacy monolithic `store.jsonl` (the pre-shard layout) is migrated
//! on load: its entries are folded in (shards win ties) and re-homed
//! into shard files at the next persist, after which the legacy file is
//! removed.

use crate::{ModuleResult, PhaseTimes};
use localias_ast::fp;
use localias_obs as obs;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Bumped whenever any analysis stage changes observable results, so
/// stale caches from older binaries can never serve wrong answers. Mixed
/// into every canonical fingerprint *and* written in every shard header.
///
/// Single-sourced from [`localias_ast::fp`] so the function-granular
/// incremental recheck in `localias-cqual` versions its fingerprints in
/// lockstep with this store.
///
/// v2: the checker moved to the frozen-analysis, call-graph-scheduled
/// pipeline and the store grew the generic `"v"` payload (see
/// [`CachedValues`]); every v1 store is discarded whole on load.
pub const ANALYSIS_VERSION: u32 = localias_ast::fp::ANALYSIS_VERSION;

/// Key-domain identifier, mixed into every canonical fingerprint.
///
/// Deliberately *frozen* at the `v2` literal across the v3 sharded store
/// layout: sharding changed where entries live, not what they mean, so
/// existing fingerprints (and a migrated legacy store) must keep hitting.
const STORE_SCHEMA: &str = "localias-cache/v2";

/// Schema identifier written in every shard file's header line.
const SHARD_SCHEMA: &str = "localias-cache/v3-shard";

/// Seed-independent description of what one cached result covers. Keyed
/// into the fingerprint so a config change invalidates rather than hits.
const ANALYSIS_CONFIG: &str = "modes=no_confine,confine,all_strong";

/// Seed-independent description of what one §8 precision entry covers.
const PRECISION_CONFIG: &str = "analyses=steensgaard,andersen;metric=local-pair-aliasing";

/// File name of the legacy monolithic store (pre-shard layout), migrated
/// into shards on load and removed after the first successful persist.
pub const STORE_FILE: &str = "store.jsonl";

/// Default number of shard files per cache directory.
pub const DEFAULT_SHARDS: usize = 16;

/// Upper bound on `--cache-shards` (beyond this, per-file overheads beat
/// any contention win).
pub const MAX_SHARDS: usize = 256;

/// Attempts to take one shard lock before skipping its persist.
const LOCK_ATTEMPTS: u32 = 8;

/// First backoff sleep; doubles per attempt up to [`LOCK_CAP_MS`].
const LOCK_BASE_MS: u64 = 1;

/// Backoff ceiling per sleep.
const LOCK_CAP_MS: u64 = 50;

/// Fingerprint of a module's raw source text (the pre-parse fast path),
/// domain-separated by the alias backend. The Steensgaard default stays
/// byte-identical to the historical untagged domain, so existing stores
/// remain valid; any other backend appends its
/// [`Backend::domain_tag`](localias_alias::Backend::domain_tag), so a
/// backend switch against a warm cache can never serve a stale hit.
pub fn source_fingerprint(source: &str, backend: localias_alias::Backend) -> u128 {
    let domain = format!("raw;{}", backend.domain_tag());
    fp::fingerprint(&domain, source)
}

/// Fingerprint of one §8 precision-sweep subject. Domain-separated from
/// [`source_fingerprint`] (and versioned like [`module_fingerprint`]) so
/// experiment and precision entries can share one store without a key of
/// one kind ever hitting an entry of the other.
pub fn precision_fingerprint(source: &str) -> u128 {
    let domain = format!("raw;precision;{STORE_SCHEMA};av{ANALYSIS_VERSION};{PRECISION_CONFIG};");
    fp::fingerprint(&domain, source)
}

/// Canonical fingerprint of a parsed module: hash of its pretty-printed
/// source, domain-separated by the analysis version, configuration, and
/// alias backend (Steensgaard untagged — see [`source_fingerprint`]).
/// Deliberately independent of the corpus seed and the module's name.
pub fn module_fingerprint(m: &localias_ast::Module, backend: localias_alias::Backend) -> u128 {
    let canon = localias_ast::pretty::print_module(m);
    let domain = format!(
        "{STORE_SCHEMA};av{ANALYSIS_VERSION};{ANALYSIS_CONFIG};{}",
        backend.domain_tag()
    );
    fp::fingerprint(&domain, &canon)
}

/// Where (whether) a sweep keeps its cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachePolicy {
    /// No cache: every sweep is cold and nothing touches the disk.
    Disabled,
    /// Cache under the given directory, partitioned into `shards` files.
    Dir {
        /// Cache directory.
        dir: PathBuf,
        /// Shard-file count (clamped to `1..=`[`MAX_SHARDS`] on load).
        shards: usize,
    },
}

impl CachePolicy {
    /// The default policy: caching on, under `.localias-cache/` in the
    /// current directory, with [`DEFAULT_SHARDS`] shards.
    pub fn enabled_default() -> CachePolicy {
        CachePolicy::dir(".localias-cache")
    }

    /// Caching on under `dir` with the default shard count.
    pub fn dir(dir: impl Into<PathBuf>) -> CachePolicy {
        CachePolicy::Dir {
            dir: dir.into(),
            shards: DEFAULT_SHARDS,
        }
    }
}

/// The generic store payload: six unsigned values per entry. What they
/// mean is the *keying domain's* business — experiment entries pack a
/// [`CachedOutcome`], precision entries a [`PrecisionOutcome`] — and the
/// domain-separated fingerprints guarantee a key of one kind never
/// resolves to values of the other.
pub type CachedValues = [u64; 6];

/// One cached per-module outcome: the error triple plus the phase times
/// of the run that produced it (replayed into warm reports so the phase
/// breakdown keeps describing the analysis cost the results represent).
#[derive(Debug, Clone, Copy)]
pub struct CachedOutcome {
    /// Errors without confine inference.
    pub no_confine: usize,
    /// Errors with confine inference.
    pub confine: usize,
    /// Errors assuming all updates strong.
    pub all_strong: usize,
    /// Phase times of the original (cold) measurement.
    pub times: PhaseTimes,
}

impl CachedOutcome {
    /// Captures a freshly measured result.
    pub fn of(r: &ModuleResult, times: PhaseTimes) -> CachedOutcome {
        CachedOutcome {
            no_confine: r.no_confine,
            confine: r.confine,
            all_strong: r.all_strong,
            times,
        }
    }

    /// Rehydrates a [`ModuleResult`] under the *current* module name
    /// (names are seed-dependent and not part of the key).
    pub fn to_result(self, name: &str) -> ModuleResult {
        ModuleResult {
            name: name.to_string(),
            no_confine: self.no_confine,
            confine: self.confine,
            all_strong: self.all_strong,
        }
    }

    /// Packs into the generic store payload.
    pub fn to_values(self) -> CachedValues {
        [
            self.no_confine as u64,
            self.confine as u64,
            self.all_strong as u64,
            self.times.parse.as_nanos() as u64,
            self.times.check.as_nanos() as u64,
            self.times.confine.as_nanos() as u64,
        ]
    }

    /// Unpacks from the generic store payload.
    pub fn from_values(v: CachedValues) -> CachedOutcome {
        CachedOutcome {
            no_confine: v[0] as usize,
            confine: v[1] as usize,
            all_strong: v[2] as usize,
            times: PhaseTimes {
                parse: Duration::from_nanos(v[3]),
                check: Duration::from_nanos(v[4]),
                confine: Duration::from_nanos(v[5]),
            },
        }
    }
}

/// One cached §8 precision-sweep outcome (per random subject module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionOutcome {
    /// Pointer-local pairs compared in the module.
    pub pairs: u64,
    /// Pairs aliased under unification (Steensgaard).
    pub aliased_uni: u64,
    /// Pairs aliased under inclusion (Andersen).
    pub aliased_incl: u64,
    /// Whether any pair is conflated only by unification.
    pub gap: bool,
}

impl PrecisionOutcome {
    /// Packs into the generic store payload.
    pub fn to_values(self) -> CachedValues {
        [
            self.pairs,
            self.aliased_uni,
            self.aliased_incl,
            self.gap as u64,
            0,
            0,
        ]
    }

    /// Unpacks from the generic store payload.
    pub fn from_values(v: CachedValues) -> PrecisionOutcome {
        PrecisionOutcome {
            pairs: v[0],
            aliased_uni: v[1],
            aliased_incl: v[2],
            gap: v[3] != 0,
        }
    }
}

/// Cache statistics for one sweep, reported in
/// `localias-bench-experiment/v4` documents.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Modules served from the cache (raw or canonical fingerprint).
    pub hits: usize,
    /// Modules analyzed from scratch this sweep.
    pub misses: usize,
    /// Cache directory, as given.
    pub dir: String,
    /// Shard files the store is partitioned into.
    pub shards: usize,
    /// Hits per home shard (`len == shards`).
    pub shard_hits: Vec<usize>,
    /// Misses per home shard (`len == shards`).
    pub shard_misses: Vec<usize>,
    /// Shards quarantined (renamed to `*.bad`) this sweep.
    pub quarantined: usize,
    /// Lock-acquisition retries (backoff sleeps) while persisting.
    pub lock_retries: usize,
    /// Shards whose persist was skipped because the lock stayed
    /// contended past the bounded backoff.
    pub lock_skips: usize,
    /// Time spent reading + parsing the shards at sweep start.
    pub load: Duration,
    /// Time spent merging + atomically rewriting them at sweep end.
    pub store: Duration,
}

/// The in-memory index over the on-disk store.
#[derive(Debug)]
pub struct AnalysisCache {
    dir: PathBuf,
    /// Shard-file count new entries are partitioned into.
    shards: usize,
    /// canonical fingerprint → generic payload.
    entries: HashMap<u128, CachedValues>,
    /// raw-source fingerprint → canonical fingerprint.
    by_raw: HashMap<u128, u128>,
    /// Home shards holding entries not yet persisted.
    dirty: HashSet<usize>,
    /// Legacy monolithic store awaiting removal once its entries have
    /// been re-homed into shards by a fully successful persist.
    legacy: Option<PathBuf>,
    quarantined: usize,
    lock_retries: usize,
    lock_skips: usize,
    load_time: Duration,
    store_time: Duration,
}

impl AnalysisCache {
    /// [`AnalysisCache::load_sharded`] with [`DEFAULT_SHARDS`].
    pub fn load(dir: &Path) -> AnalysisCache {
        Self::load_sharded(dir, DEFAULT_SHARDS)
    }

    /// Loads every shard under `dir` (lock-free), or starts empty when
    /// there are none. Corrupt, truncated, or version-mismatched shards
    /// are quarantined individually (renamed to `*.bad`) with a warning —
    /// never an error, and never at the expense of the healthy shards. A
    /// legacy monolithic `store.jsonl` is folded in and scheduled for
    /// re-homing into shards (see the module docs).
    pub fn load_sharded(dir: &Path, shards: usize) -> AnalysisCache {
        let t0 = Instant::now();
        let mut cache = AnalysisCache {
            dir: dir.to_path_buf(),
            shards: shards.clamp(1, MAX_SHARDS),
            entries: HashMap::new(),
            by_raw: HashMap::new(),
            dirty: HashSet::new(),
            legacy: None,
            quarantined: 0,
            lock_retries: 0,
            lock_skips: 0,
            load_time: Duration::ZERO,
            store_time: Duration::ZERO,
        };

        sweep_orphaned_tmp_files(dir);

        // Read whatever shard files exist, in index order, whatever shard
        // count wrote them: entries are keyed by fingerprint, so a shard
        // written under a different `--cache-shards` still serves hits
        // (its entries re-home at the next persist that touches them).
        let mut shard_files: Vec<(usize, PathBuf)> = Vec::new();
        if let Ok(rd) = std::fs::read_dir(dir) {
            for entry in rd.flatten() {
                if let Some(idx) = shard_index_of(&entry.file_name().to_string_lossy()) {
                    shard_files.push((idx, entry.path()));
                }
            }
        }
        shard_files.sort();
        for (idx, path) in shard_files {
            let _hist = obs::hist_timer!(obs::Hist::CacheShardLoad);
            // A read error means the file vanished since listing (a
            // concurrent writer's rename) — skip, never quarantine.
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            match parse_store(&text, &shard_header_line(idx)) {
                Ok((entries, by_raw)) => {
                    cache.entries.extend(entries);
                    cache.by_raw.extend(by_raw);
                }
                Err(why) => {
                    obs::warn!(
                        "localias-bench: warning: quarantining cache shard {} ({why})",
                        path.display()
                    );
                    quarantine(&path);
                    cache.quarantined += 1;
                    obs::count(obs::Counter::CacheQuarantined, 1);
                }
            }
        }

        // Legacy monolithic store: fold in (shards win ties) and mark the
        // migrated entries' home shards dirty so the next persist re-homes
        // them, after which the legacy file is removed.
        let legacy_path = dir.join(STORE_FILE);
        if let Ok(text) = std::fs::read_to_string(&legacy_path) {
            match parse_store(&text, &legacy_header_line()) {
                Ok((entries, by_raw)) => {
                    for (fp, v) in entries {
                        cache.entries.entry(fp).or_insert(v);
                    }
                    for (raw, fp) in by_raw {
                        if let std::collections::hash_map::Entry::Vacant(e) =
                            cache.by_raw.entry(raw)
                        {
                            e.insert(fp);
                            cache.dirty.insert(cache.shard_of(fp));
                        }
                    }
                    cache.legacy = Some(legacy_path);
                }
                Err(why) => {
                    obs::warn!(
                        "localias-bench: warning: quarantining legacy cache store {} ({why})",
                        legacy_path.display()
                    );
                    quarantine(&legacy_path);
                    cache.quarantined += 1;
                    obs::count(obs::Counter::CacheQuarantined, 1);
                }
            }
        }

        cache.load_time = t0.elapsed();
        cache
    }

    /// The directory this cache persists under, for display.
    pub fn dir_display(&self) -> String {
        self.dir.display().to_string()
    }

    /// Shard files new entries are partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The home shard of a canonical fingerprint.
    pub fn shard_of(&self, fp: u128) -> usize {
        (fp % self.shards as u128) as usize
    }

    /// Shards quarantined while loading or persisting.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Lock-acquisition retries (backoff sleeps) over all persists.
    pub fn lock_retries(&self) -> usize {
        self.lock_retries
    }

    /// Shard persists skipped because their lock stayed contended.
    pub fn lock_skips(&self) -> usize {
        self.lock_skips
    }

    /// Time [`AnalysisCache::load_sharded`] spent on the store files.
    pub fn load_time(&self) -> Duration {
        self.load_time
    }

    /// Time the last [`AnalysisCache::persist`] spent merging + writing.
    pub fn store_time(&self) -> Duration {
        self.store_time
    }

    /// Number of distinct cached module outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The canonical fingerprint a raw-source fingerprint aliases, if
    /// this source has been seen before.
    pub fn resolve_raw(&self, raw: u128) -> Option<u128> {
        self.by_raw.get(&raw).copied()
    }

    /// Fast-path lookup by raw-source fingerprint (no parse needed).
    pub fn lookup_raw(&self, raw: u128) -> Option<CachedOutcome> {
        self.lookup_values(self.resolve_raw(raw)?)
            .map(CachedOutcome::from_values)
    }

    /// Lookup by canonical fingerprint.
    pub fn lookup_fp(&self, fp: u128) -> Option<CachedOutcome> {
        self.lookup_values(fp).map(CachedOutcome::from_values)
    }

    /// Records a freshly measured outcome under both fingerprints.
    pub fn record(&mut self, fp: u128, raw: u128, outcome: CachedOutcome) {
        self.record_values(fp, raw, outcome.to_values());
    }

    /// Generic lookup of the raw payload under a canonical key. Callers
    /// of a given keying domain (e.g. [`precision_fingerprint`]) own the
    /// interpretation of the six values.
    pub fn lookup_values(&self, fp: u128) -> Option<CachedValues> {
        self.entries.get(&fp).copied()
    }

    /// Generic record of a raw payload under `(fp, raw)`.
    pub fn record_values(&mut self, fp: u128, raw: u128, values: CachedValues) {
        self.entries.insert(fp, values);
        self.by_raw.insert(raw, fp);
        self.dirty.insert(self.shard_of(fp));
    }

    /// Remembers that `raw` canonicalizes to the already-cached `fp`, so
    /// the next sweep takes the no-parse fast path for this source.
    pub fn alias_raw(&mut self, raw: u128, fp: u128) {
        if self.by_raw.get(&raw) != Some(&fp) {
            self.by_raw.insert(raw, fp);
            self.dirty.insert(self.shard_of(fp));
        }
    }

    /// Persists every dirty shard: merge-on-write under the shard lock,
    /// then an atomic temp + rename replace. A no-op when nothing changed
    /// since load. Lock timeouts skip the shard with a warning (bounded
    /// backoff, never blocking the sweep); I/O errors are reported after
    /// every shard has been attempted.
    pub fn persist(&mut self) -> std::io::Result<()> {
        if self.dirty.is_empty() && self.legacy.is_none() {
            return Ok(());
        }
        let t0 = Instant::now();
        std::fs::create_dir_all(&self.dir)?;

        // Group every in-memory line by its home shard. A raw alias whose
        // backing entry is gone (a quarantined shard held the entry but
        // another shard held the alias) is dropped — loudly, so store
        // corruption is observable instead of invisible.
        let mut lines: HashMap<usize, ShardLines> = HashMap::new();
        let mut dangling = 0usize;
        for (&raw, &fp) in &self.by_raw {
            match self.entries.get(&fp) {
                Some(v) => {
                    lines
                        .entry(self.shard_of(fp))
                        .or_default()
                        .insert(raw, (fp, *v));
                }
                None => dangling += 1,
            }
        }
        if dangling > 0 {
            obs::warn!(
                "localias-bench: warning: dropping {dangling} raw alias(es) whose backing \
                 entry is missing (store was corrupted or partially quarantined)"
            );
        }

        let mut first_err: Option<std::io::Error> = None;
        let mut todo: Vec<usize> = self.dirty.iter().copied().collect();
        todo.sort_unstable();
        for s in todo {
            match self.persist_shard(s, lines.get(&s)) {
                Ok(true) => {
                    self.dirty.remove(&s);
                }
                Ok(false) => {} // skipped (contended or foreign); stays dirty
                Err(e) => {
                    obs::warn!(
                        "localias-bench: warning: cache shard {} not written: {e}",
                        self.dir.join(shard_file_name(s)).display()
                    );
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }

        // Only once every migrated entry has a shard home is the legacy
        // store redundant; a partial persist keeps it for the next run.
        if self.dirty.is_empty() && first_err.is_none() {
            if let Some(legacy) = self.legacy.take() {
                let _ = std::fs::remove_file(legacy);
            }
        }

        self.store_time = t0.elapsed();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Persists one shard. `Ok(true)` on success, `Ok(false)` when the
    /// shard was skipped (lock contention past the backoff bound, or a
    /// shard owned by a newer binary).
    fn persist_shard(&mut self, s: usize, mine: Option<&ShardLines>) -> std::io::Result<bool> {
        let _hist = obs::hist_timer!(obs::Hist::CacheShardPersist);
        let path = self.dir.join(shard_file_name(s));
        let lock_path = self.dir.join(format!("shard-{s:02}.lock"));
        let Some(_guard) = acquire_lock(&lock_path, &mut self.lock_retries)? else {
            obs::warn!(
                "localias-bench: warning: cache shard {} is locked by another live \
                 process; skipping persist (its entries merge or recompute next run)",
                path.display()
            );
            self.lock_skips += 1;
            obs::count(obs::Counter::CacheLockSkips, 1);
            return Ok(false);
        };

        // Merge-on-write: union with whatever is on disk *now*, which a
        // concurrent writer may have extended since our lock-free load.
        // On-disk wins ties (same analysis_version ⇒ same deterministic
        // values, and keeping disk avoids churn); a shard written by a
        // *newer* analysis_version is theirs, not ours — leave it alone.
        let mut merged: ShardLines = mine.cloned().unwrap_or_default();
        if let Ok(text) = std::fs::read_to_string(&path) {
            match parse_store(&text, &shard_header_line(s)) {
                Ok((entries, by_raw)) => {
                    for (raw, fp) in by_raw {
                        if let Some(v) = entries.get(&fp) {
                            merged.insert(raw, (fp, *v));
                        }
                    }
                }
                Err(why) => {
                    if header_version(&text).is_some_and(|v| v > ANALYSIS_VERSION) {
                        obs::warn!(
                            "localias-bench: warning: cache shard {} was written by a \
                             newer binary; leaving it alone",
                            path.display()
                        );
                        return Ok(false);
                    }
                    obs::warn!(
                        "localias-bench: warning: quarantining cache shard {} ({why})",
                        path.display()
                    );
                    quarantine(&path);
                    self.quarantined += 1;
                    obs::count(obs::Counter::CacheQuarantined, 1);
                }
            }
        }

        let mut out = String::with_capacity(64 + merged.len() * 128);
        out.push_str(&shard_header_line(s));
        out.push('\n');
        // BTreeMap iteration is raw-sorted: byte-stable for a given
        // contents regardless of hash-map iteration order.
        for (raw, (fp, v)) in &merged {
            out.push_str(&entry_line(*fp, *raw, v));
            out.push('\n');
        }
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}", shard_file_name(s), std::process::id()));
        std::fs::write(&tmp, &out)?;
        let result = std::fs::rename(&tmp, &path);
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result?;
        Ok(true)
    }
}

/// The file name of shard `i` (`shard-00.jsonl`, `shard-01.jsonl`, …).
pub fn shard_file_name(i: usize) -> String {
    format!("shard-{i:02}.jsonl")
}

/// Parses a shard index back out of a file name; `None` for anything
/// that is not exactly a shard file (`*.bad`, `*.tmp.*`, locks, …).
fn shard_index_of(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("shard-")?.strip_suffix(".jsonl")?;
    if digits.is_empty() || digits.len() > 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Renames a broken store file to `<name>.bad` (replacing any previous
/// quarantine of the same file) so the evidence survives for inspection
/// without ever being parsed again.
fn quarantine(path: &Path) {
    let mut bad = path.as_os_str().to_os_string();
    bad.push(".bad");
    let bad = PathBuf::from(bad);
    let _ = std::fs::remove_file(&bad);
    if std::fs::rename(path, &bad).is_err() {
        // Cross-device or permission trouble: removal still protects the
        // next run from re-parsing garbage.
        let _ = std::fs::remove_file(path);
    }
}

/// Removes `*.tmp.<pid>` files left behind by writers that died between
/// `write` and `rename`. Only files whose writing process is provably
/// gone are swept; a live writer's in-flight temp file is left alone.
fn sweep_orphaned_tmp_files(dir: &Path) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some((_, pid)) = name.rsplit_once(".tmp.") else {
            continue;
        };
        let Ok(pid) = pid.parse::<u32>() else {
            continue;
        };
        if pid_is_dead(pid) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Whether `pid` provably no longer exists. Conservative: `false`
/// (assume alive) when liveness cannot be determined, so stale-state
/// cleanup never races a live process.
fn pid_is_dead(pid: u32) -> bool {
    if pid == std::process::id() {
        return false;
    }
    let proc_dir = Path::new("/proc");
    if proc_dir.is_dir() {
        !proc_dir.join(pid.to_string()).exists()
    } else {
        false
    }
}

/// Holds `path` as an advisory lock; removes it on drop.
struct ShardLock {
    path: PathBuf,
}

impl Drop for ShardLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One `create_new` attempt on the lockfile (the portable atomic
/// test-and-set). The holder's pid is written inside for stale-lock
/// detection and debugging.
fn try_lock(path: &Path) -> std::io::Result<Option<ShardLock>> {
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)
    {
        Ok(mut f) => {
            let _ = write!(f, "{}", std::process::id());
            Ok(Some(ShardLock {
                path: path.to_path_buf(),
            }))
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
        Err(e) => Err(e),
    }
}

/// Takes the shard lock with bounded exponential backoff, breaking locks
/// whose holder is provably dead. `Ok(None)` when the lock stayed
/// contended through every attempt — the caller skips, never blocks.
fn acquire_lock(path: &Path, retries: &mut usize) -> std::io::Result<Option<ShardLock>> {
    for attempt in 0..LOCK_ATTEMPTS {
        if attempt > 0 {
            *retries += 1;
            obs::count(obs::Counter::CacheLockRetries, 1);
            let ms = (LOCK_BASE_MS << (attempt - 1)).min(LOCK_CAP_MS);
            std::thread::sleep(Duration::from_millis(ms));
        }
        if let Some(guard) = try_lock(path)? {
            return Ok(Some(guard));
        }
        // Contended: break the lock iff its holder died. The steal is an
        // atomic rename (only one breaker wins), and a post-steal re-read
        // restores the rare live lock taken in the read/steal window.
        if let Ok(text) = std::fs::read_to_string(path) {
            if text.trim().parse::<u32>().is_ok_and(pid_is_dead) {
                let stolen = path.with_extension(format!("stale.{}", std::process::id()));
                if std::fs::rename(path, &stolen).is_ok() {
                    let live = std::fs::read_to_string(&stolen)
                        .ok()
                        .and_then(|t| t.trim().parse::<u32>().ok())
                        .is_some_and(|pid| !pid_is_dead(pid));
                    if live && std::fs::rename(&stolen, path).is_ok() {
                        continue;
                    }
                    let _ = std::fs::remove_file(&stolen);
                }
            }
        }
    }
    Ok(None)
}

/// Header line of shard `i`.
fn shard_header_line(i: usize) -> String {
    format!(
        "{{\"schema\":\"{SHARD_SCHEMA}\",\"analysis_version\":{ANALYSIS_VERSION},\"shard\":{i}}}"
    )
}

/// Header line of the legacy monolithic store (the pre-shard layout).
fn legacy_header_line() -> String {
    format!("{{\"schema\":\"{STORE_SCHEMA}\",\"analysis_version\":{ANALYSIS_VERSION}}}")
}

/// Best-effort extraction of `analysis_version` from a store file that
/// failed the strict parse, to tell "older garbage" (quarantine) from
/// "newer binary's store" (hands off).
fn header_version(text: &str) -> Option<u32> {
    let head = text.lines().next()?;
    let rest = head.split("\"analysis_version\":").nth(1)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn entry_line(fp: u128, raw: u128, v: &CachedValues) -> String {
    format!(
        "{{\"fp\":\"{fp:032x}\",\"raw\":\"{raw:032x}\",\"v\":[{},{},{},{},{},{}]}}",
        v[0], v[1], v[2], v[3], v[4], v[5],
    )
}

/// Lines of one shard keyed by raw fingerprint: raw → (canonical,
/// payload). Raw-sorted so the written file is byte-stable.
type ShardLines = BTreeMap<u128, (u128, CachedValues)>;

type StoreIndex = (HashMap<u128, CachedValues>, HashMap<u128, u128>);

/// Strictly parses a store file against the expected header. Any
/// deviation from the written shape is an error (the caller quarantines
/// the file): a half-written or hand-edited shard must degrade to a cold
/// run of its modules, not half-hit.
fn parse_store(text: &str, header: &str) -> Result<StoreIndex, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == header => {}
        Some(_) => return Err("schema, shard, or analysis-version mismatch".into()),
        None => return Err("empty store".into()),
    }
    if !text.ends_with('\n') {
        return Err("truncated store (no trailing newline)".into());
    }
    let mut entries = HashMap::new();
    let mut by_raw = HashMap::new();
    for (n, line) in lines.enumerate() {
        let (fp, raw, outcome) =
            parse_entry(line).ok_or_else(|| format!("malformed entry on line {}", n + 2))?;
        entries.insert(fp, outcome);
        by_raw.insert(raw, fp);
    }
    Ok((entries, by_raw))
}

/// A minimal strict scanner over one entry line (we parse only what
/// [`entry_line`] writes; anything else is corruption).
struct Scan<'a>(&'a str);

impl<'a> Scan<'a> {
    fn lit(&mut self, l: &str) -> Option<()> {
        self.0 = self.0.strip_prefix(l)?;
        Some(())
    }

    fn hex(&mut self) -> Option<u128> {
        let end = self.0.find(|c: char| !c.is_ascii_hexdigit())?;
        let (digits, rest) = self.0.split_at(end);
        if digits.len() != 32 {
            return None;
        }
        self.0 = rest;
        u128::from_str_radix(digits, 16).ok()
    }

    fn int(&mut self) -> Option<u64> {
        let end = self
            .0
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.0.len());
        let (digits, rest) = self.0.split_at(end);
        if digits.is_empty() {
            return None;
        }
        self.0 = rest;
        digits.parse().ok()
    }

    fn end(&self) -> Option<()> {
        self.0.is_empty().then_some(())
    }
}

fn parse_entry(line: &str) -> Option<(u128, u128, CachedValues)> {
    let mut s = Scan(line);
    s.lit("{\"fp\":\"")?;
    let fp = s.hex()?;
    s.lit("\",\"raw\":\"")?;
    let raw = s.hex()?;
    s.lit("\",\"v\":[")?;
    let mut v = [0u64; 6];
    for (i, slot) in v.iter_mut().enumerate() {
        if i > 0 {
            s.lit(",")?;
        }
        *slot = s.int()?;
    }
    s.lit("]}")?;
    s.end()?;
    Some((fp, raw, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_ast::parse_module;

    /// A fresh, empty cache directory unique to this unit test.
    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("localias-cache-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn canonical_fingerprint_ignores_comments_and_whitespace() {
        let a = parse_module("a", "int g;\nvoid f() { g = 1; }\n").unwrap();
        let b = parse_module(
            "b",
            "// a comment\nint   g;\nvoid f()   {\n\n    g = 1;\n}\n",
        )
        .unwrap();
        let steens = localias_alias::Backend::Steensgaard;
        assert_eq!(
            module_fingerprint(&a, steens),
            module_fingerprint(&b, steens)
        );

        let c = parse_module("c", "int g;\nvoid f() { g = 2; }\n").unwrap();
        assert_ne!(
            module_fingerprint(&a, steens),
            module_fingerprint(&c, steens)
        );
    }

    #[test]
    fn raw_fingerprint_is_exact() {
        let steens = localias_alias::Backend::Steensgaard;
        assert_eq!(
            source_fingerprint("int g;", steens),
            source_fingerprint("int g;", steens)
        );
        assert_ne!(
            source_fingerprint("int g;", steens),
            source_fingerprint("int g; ", steens)
        );
    }

    #[test]
    fn entry_lines_round_trip() {
        let outcome = CachedOutcome {
            no_confine: 22,
            confine: 16,
            all_strong: 15,
            times: PhaseTimes {
                parse: Duration::from_nanos(123_456),
                check: Duration::from_nanos(789),
                confine: Duration::from_nanos(1_000_000_001),
            },
        };
        let line = entry_line(u128::MAX - 7, 42, &outcome.to_values());
        let (fp, raw, v) = parse_entry(&line).expect("round trip");
        assert_eq!(fp, u128::MAX - 7);
        assert_eq!(raw, 42);
        let back = CachedOutcome::from_values(v);
        assert_eq!(
            (back.no_confine, back.confine, back.all_strong),
            (22, 16, 15)
        );
        assert_eq!(back.times.parse, outcome.times.parse);
        assert_eq!(back.times.confine, outcome.times.confine);
    }

    #[test]
    fn precision_outcomes_round_trip_through_values() {
        let p = PrecisionOutcome {
            pairs: 91,
            aliased_uni: 30,
            aliased_incl: 12,
            gap: true,
        };
        assert_eq!(PrecisionOutcome::from_values(p.to_values()), p);
        let line = entry_line(1, 2, &p.to_values());
        let (_, _, v) = parse_entry(&line).expect("round trip");
        assert_eq!(PrecisionOutcome::from_values(v), p);
    }

    #[test]
    fn malformed_entries_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"fp\":\"zz\",...}",
            // The v1 (PR-2) entry shape: named fields instead of the
            // generic payload. Must scan as corruption, never half-parse.
            "{\"fp\":\"00000000000000000000000000000000\",\"raw\":\"00000000000000000000000000000000\",\"nc\":1,\"cf\":1,\"as\":1,\"parse_ns\":1,\"check_ns\":1,\"confine_ns\":1}",
            // Wrong arity.
            "{\"fp\":\"00000000000000000000000000000000\",\"raw\":\"00000000000000000000000000000000\",\"v\":[1,2,3,4,5]}",
            "{\"fp\":\"00000000000000000000000000000000\",\"raw\":\"00000000000000000000000000000000\",\"v\":[1,2,3,4,5,6,7]}",
            "garbage",
        ] {
            assert!(parse_entry(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn shard_header_mismatch_is_an_error() {
        let h = shard_header_line(3);
        assert!(parse_store(
            "{\"schema\":\"localias-cache/v0\",\"analysis_version\":1}\n",
            &h
        )
        .is_err());
        // The PR-2/PR-3 monolithic header on a shard file: rejected.
        assert!(parse_store(&format!("{}\n", legacy_header_line()), &h).is_err());
        // The right schema under the wrong shard index: rejected.
        assert!(parse_store(&format!("{}\n", shard_header_line(4)), &h).is_err());
        assert!(parse_store("", &h).is_err());
        let good = format!("{h}\n");
        assert!(parse_store(&good, &h).is_ok());
        // Truncation (missing trailing newline) is corruption.
        assert!(parse_store(good.trim_end(), &h).is_err());
    }

    #[test]
    fn header_version_is_extracted_even_from_unparseable_stores() {
        assert_eq!(
            header_version(&format!("{}\n", shard_header_line(0))),
            Some(ANALYSIS_VERSION)
        );
        assert_eq!(
            header_version(
                "{\"schema\":\"localias-cache/v9\",\"analysis_version\":7,\"shard\":1}\ngarbage"
            ),
            Some(7)
        );
        assert_eq!(header_version("no header at all"), None);
        assert_eq!(header_version(""), None);
    }

    #[test]
    fn shard_file_names_round_trip_and_reject_cousins() {
        for i in [0, 1, 15, 99, 255] {
            assert_eq!(shard_index_of(&shard_file_name(i)), Some(i), "{i}");
        }
        for bad in [
            "shard-00.jsonl.bad",
            "shard-00.jsonl.tmp.123",
            "shard-00.lock",
            "shard-.jsonl",
            "shard-xx.jsonl",
            "shard-1234.jsonl",
            "store.jsonl",
        ] {
            assert_eq!(shard_index_of(bad), None, "{bad}");
        }
    }

    #[test]
    fn fingerprint_domains_never_collide() {
        use localias_alias::Backend;
        let src = "int g;\nvoid f() { g = 1; }\n";
        assert_ne!(
            source_fingerprint(src, Backend::Steensgaard),
            precision_fingerprint(src),
            "precision keys are domain-separated from experiment keys"
        );
        assert_ne!(
            source_fingerprint(src, Backend::Steensgaard),
            source_fingerprint(src, Backend::Andersen),
            "per-backend raw keys are domain-separated"
        );
        let m = parse_module("m", src).unwrap();
        assert_ne!(
            module_fingerprint(&m, Backend::Steensgaard),
            module_fingerprint(&m, Backend::Andersen),
            "per-backend canonical keys are domain-separated"
        );
        assert_ne!(
            source_fingerprint(src, Backend::Andersen),
            precision_fingerprint(src),
        );
    }

    /// The in-process shape of the PR-2/PR-3 lost-update bug: two caches
    /// load the same (empty) store, each records its own entries, and
    /// both persist. The monolithic rewrite made the second persist
    /// clobber the first; merge-on-write must keep the union.
    #[test]
    fn interleaved_persists_keep_the_union() {
        let dir = test_dir("interleave");
        let mut a = AnalysisCache::load(&dir);
        let mut b = AnalysisCache::load(&dir);
        for i in 0..40u128 {
            a.record_values(i, i + 1000, [i as u64, 0, 0, 0, 0, 0]);
            b.record_values(i + 500, i + 2000, [i as u64, 1, 0, 0, 0, 0]);
        }
        a.persist().unwrap();
        b.persist().unwrap();

        let c = AnalysisCache::load(&dir);
        assert_eq!(c.len(), 80, "no entry lost to the concurrent writer");
        for i in 0..40u128 {
            assert_eq!(c.lookup_values(i), Some([i as u64, 0, 0, 0, 0, 0]));
            assert_eq!(c.lookup_values(i + 500), Some([i as u64, 1, 0, 0, 0, 0]));
            assert_eq!(c.resolve_raw(i + 1000), Some(i));
            assert_eq!(c.resolve_raw(i + 2000), Some(i + 500));
        }
        assert_eq!((c.quarantined(), c.lock_skips()), (0, 0));
    }

    /// A legacy monolithic `store.jsonl` (the pre-shard layout, same
    /// analysis version) must keep serving hits, get re-homed into
    /// shards, and disappear after the first successful persist.
    #[test]
    fn legacy_store_is_migrated_into_shards() {
        let dir = test_dir("legacy");
        let mut store = format!("{}\n", legacy_header_line());
        for i in 0..20u128 {
            store.push_str(&entry_line(i, i + 100, &[i as u64, 2, 3, 4, 5, 6]));
            store.push('\n');
        }
        std::fs::write(dir.join(STORE_FILE), store).unwrap();

        let mut c = AnalysisCache::load(&dir);
        assert_eq!(c.len(), 20, "legacy entries serve immediately");
        assert_eq!(c.lookup_values(7), Some([7, 2, 3, 4, 5, 6]));
        c.persist().unwrap();

        assert!(
            !dir.join(STORE_FILE).exists(),
            "legacy store removed after re-homing"
        );
        let c2 = AnalysisCache::load(&dir);
        assert_eq!(c2.len(), 20, "entries survive in shard files");
        assert_eq!(c2.resolve_raw(107), Some(7));
    }

    /// A corrupt legacy store is quarantined (renamed `.bad`), never
    /// half-trusted, and never re-parsed on the next load.
    #[test]
    fn corrupt_legacy_store_is_quarantined() {
        let dir = test_dir("legacy-bad");
        std::fs::write(dir.join(STORE_FILE), b"garbage\x00not a store\n").unwrap();
        let c = AnalysisCache::load(&dir);
        assert!(c.is_empty());
        assert_eq!(c.quarantined(), 1);
        assert!(!dir.join(STORE_FILE).exists());
        assert!(dir.join(format!("{STORE_FILE}.bad")).exists());

        let c2 = AnalysisCache::load(&dir);
        assert_eq!(c2.quarantined(), 0, "quarantined file is not re-parsed");
    }

    /// Entries partition across multiple shard files, every shard file
    /// carries its own header, and a foreign shard count still loads.
    #[test]
    fn entries_partition_across_shards() {
        let dir = test_dir("partition");
        let mut c = AnalysisCache::load_sharded(&dir, 4);
        for i in 0..64u128 {
            c.record_values(i, i + 1, [1, 0, 0, 0, 0, 0]);
        }
        c.persist().unwrap();

        let mut files = 0;
        for i in 0..4 {
            let path = dir.join(shard_file_name(i));
            if !path.is_file() {
                continue;
            }
            files += 1;
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.starts_with(&shard_header_line(i)), "own header");
            for line in text.lines().skip(1) {
                let (fp, _, _) = parse_entry(line).unwrap();
                assert_eq!((fp % 4) as usize, i, "entry in its home shard");
            }
        }
        assert!(files > 1, "entries spread over multiple shards");

        // A different shard count still loads everything (entries are
        // keyed by fingerprint, not by which file holds them).
        let c8 = AnalysisCache::load_sharded(&dir, 8);
        assert_eq!(c8.len(), 64);
    }

    /// `*.tmp.<pid>` files from dead writers are swept at load; a live
    /// writer's temp file is left alone.
    #[test]
    fn orphaned_tmp_files_are_swept_at_load() {
        let dir = test_dir("tmp-sweep");
        // Dead pid: well above any default pid_max.
        let dead = dir.join("shard-03.jsonl.tmp.999999999");
        let live = dir.join(format!("shard-03.jsonl.tmp.{}", std::process::id()));
        std::fs::write(&dead, "half-written").unwrap();
        std::fs::write(&live, "in flight").unwrap();

        let _ = AnalysisCache::load(&dir);
        assert!(!dead.exists(), "dead writer's temp file swept");
        assert!(live.exists(), "live writer's temp file untouched");
    }

    /// A lockfile whose holder died mid-persist must not wedge the shard
    /// forever: the next persist breaks it and writes through.
    #[test]
    fn stale_lock_from_dead_process_is_broken() {
        let dir = test_dir("stale-lock");
        let mut c = AnalysisCache::load(&dir);
        c.record_values(5, 6, [9, 0, 0, 0, 0, 0]);
        let lock = dir.join(format!("shard-{:02}.lock", c.shard_of(5)));
        std::fs::write(&lock, "999999999").unwrap();

        c.persist().unwrap();
        assert_eq!(c.lock_skips(), 0, "stale lock broken, not skipped");
        assert!(!lock.exists(), "lock released after persist");
        assert_eq!(
            AnalysisCache::load(&dir).lookup_values(5),
            Some([9, 0, 0, 0, 0, 0])
        );
    }

    /// A lock held by a *live* process is honored: bounded backoff, then
    /// skip-persist with a warning — never blocking, never clobbering.
    #[test]
    fn contended_lock_skips_persist_without_blocking() {
        let dir = test_dir("live-lock");
        let mut c = AnalysisCache::load(&dir);
        c.record_values(5, 6, [9, 0, 0, 0, 0, 0]);
        let shard = c.shard_of(5);
        let lock = dir.join(format!("shard-{shard:02}.lock"));
        // Our own pid is definitionally alive.
        std::fs::write(&lock, format!("{}", std::process::id())).unwrap();

        c.persist().unwrap();
        assert_eq!(c.lock_skips(), 1, "contended shard skipped");
        assert!(c.lock_retries() >= 1, "backoff retries counted");
        assert!(
            !dir.join(shard_file_name(shard)).exists(),
            "skipped shard not written"
        );
        assert!(lock.exists(), "foreign lock left in place");
        std::fs::remove_file(&lock).unwrap();

        // With the lock gone the still-dirty shard persists fine.
        c.persist().unwrap();
        assert_eq!(
            AnalysisCache::load(&dir).lookup_values(5),
            Some([9, 0, 0, 0, 0, 0])
        );
    }
}
