//! A minimal timing harness standing in for criterion.
//!
//! The workspace builds fully offline (no crates.io registry), so the
//! benches cannot link criterion. This module provides the thin slice the
//! bench binaries need: named groups, per-input benchmarks, automatic
//! iteration-count calibration, and a median-of-samples report printed as
//! one line per benchmark.
//!
//! Output format (stable, grep-friendly):
//!
//! ```text
//! bench group/name/param ... median 1.234 ms/iter (min 1.1, max 1.4; 10 samples x 8 iters)
//! ```

use std::time::{Duration, Instant};

/// Target wall-clock time for one *sample* (a timed batch of iterations).
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Creates a group; `samples` defaults to 10.
    pub fn new(name: impl Into<String>) -> Self {
        BenchGroup {
            name: name.into(),
            samples: 10,
        }
    }

    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Benchmarks `f`, labelling the line with `id`.
    ///
    /// The closure's return value is consumed with [`std::hint::black_box`]
    /// so the computation cannot be optimized away.
    pub fn bench<T>(&mut self, id: impl std::fmt::Display, mut f: impl FnMut() -> T) {
        // Warm-up + calibration: how many iterations fill TARGET_SAMPLE?
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        self.report(&id.to_string(), &per_iter, iters);
    }

    /// Benchmarks `routine` with a fresh, untimed `setup()` product per
    /// iteration (criterion's `iter_with_setup`).
    pub fn bench_with_setup<S, T>(
        &mut self,
        id: impl std::fmt::Display,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let state = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(state));
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            // Pre-build the inputs so setup stays outside the timed span.
            let states: Vec<S> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for s in states {
                std::hint::black_box(routine(s));
            }
            per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        self.report(&id.to_string(), &per_iter, iters);
    }

    fn report(&self, id: &str, per_iter: &[f64], iters: usize) {
        let mut sorted = per_iter.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        println!(
            "bench {}/{} ... median {} /iter (min {}, max {}; {} samples x {} iters)",
            self.name,
            id,
            fmt_secs(median),
            fmt_secs(min),
            fmt_secs(max),
            sorted.len(),
            iters,
        );
    }
}

/// Times one invocation of `f` under an obs span named `name`,
/// returning the result and its wall-clock seconds.
///
/// This is the one place the bench binaries time a measured region —
/// the `Instant::now()` pairs that used to be copy-pasted per binary —
/// so every timed region also shows up in `--trace-out`/`--profile`
/// output under its span name.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let _span = localias_obs::span!(name);
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Runs `f` `reps` times (at least once) and returns the first run's
/// result with the *minimum* wall-clock seconds — the best-of-N scheme
/// the intra bench uses to suppress scheduler noise.
pub fn best_of<T>(name: &'static str, reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (first, mut best) = timed(name, &mut f);
    for _ in 1..reps.max(1) {
        let (_, secs) = timed(name, &mut f);
        best = best.min(secs);
    }
    (first, best)
}

/// Runs `f` `reps` times (at least once) and returns the first run's
/// result with the *mean* wall-clock seconds per run.
pub fn avg_of<T>(name: &'static str, reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let reps = reps.max(1);
    let (first, mut total) = timed(name, &mut f);
    for _ in 1..reps {
        let (_, secs) = timed(name, &mut f);
        total += secs;
    }
    (first, total / reps as f64)
}

/// Formats a duration in seconds with an auto-scaled unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_report_do_not_panic() {
        let mut g = BenchGroup::new("harness_smoke");
        g.sample_size(3);
        let mut acc = 0u64;
        g.bench("spin", || {
            acc = acc.wrapping_add(1);
            std::hint::black_box(acc)
        });
        g.bench_with_setup("setup", || vec![1u32, 2, 3], |v| v.iter().sum::<u32>());
    }

    #[test]
    fn timing_utilities_return_results_and_positive_times() {
        let (v, secs) = timed("test.timed", || 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);

        let mut runs = 0;
        let (v, best) = best_of("test.best", 3, || {
            runs += 1;
            runs
        });
        assert_eq!(v, 1, "first run's result is returned");
        assert_eq!(runs, 3);
        assert!(best >= 0.0);

        let mut runs = 0;
        let (v, avg) = avg_of("test.avg", 4, || {
            runs += 1;
            runs * 10
        });
        assert_eq!(v, 10);
        assert_eq!(runs, 4);
        assert!(avg >= 0.0);

        // Degenerate rep counts still run once.
        let (_, s) = best_of("test.best", 0, || ());
        assert!(s >= 0.0);
    }

    #[test]
    fn fmt_secs_scales_units() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(2.5e-3), "2.500 ms");
        assert_eq!(fmt_secs(2.5e-6), "2.500 us");
        assert_eq!(fmt_secs(2.5e-8), "25 ns");
    }
}
