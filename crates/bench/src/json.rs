//! A minimal JSON reader for the bench artifacts.
//!
//! The workspace is dependency-free by design, and the harness only ever
//! *emits* JSON by formatting strings — but `bench-merge` has to read
//! the per-partition `BENCH_experiment.json` artifacts back. This is a
//! small recursive-descent parser for exactly that: full JSON syntax,
//! numbers kept as `f64` (every field the merge reads is integral and
//! well inside `f64`'s exact range), objects as association lists in
//! document order.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as `(key, value)` pairs in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the value back to compact JSON (the `scale` bin uses this
    /// to re-embed a profile block lifted from a child artifact).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Value::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// A parse failure, with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value plus trailing whitespace).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs never appear in our own
                            // artifacts; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Num(-250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_structures_and_lookup() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x\ny"}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[2].get("b").unwrap().is_null());
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\cA\n""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\cA\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn renders_back_to_parseable_json() {
        let src = r#"{"a": [1, 2.5, {"b": null}], "c": "x\ny", "d": true}"#;
        let v = parse(src).unwrap();
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v, "{rendered}");
        assert!(rendered.contains("\"c\":\"x\\ny\""), "{rendered}");
        assert!(rendered.contains("2.5"), "{rendered}");
    }

    #[test]
    fn round_trips_a_real_bench_artifact() {
        // A v6 artifact rendered by ExperimentBench::to_json must parse
        // back with every field reachable.
        let bench = crate::ExperimentBench {
            seed: 99,
            modules: 2,
            threads: 1,
            wall: std::time::Duration::from_millis(10),
            phases: crate::PhaseTimes::default(),
            errors: (3, 2, 1),
            potential: 2,
            eliminated: 1,
            cache: None,
            profile: None,
            hist: vec![localias_obs::HistSnapshot {
                name: "analyze.module".into(),
                count: 2,
                sum_ns: 48,
                min_ns: 16,
                max_ns: 32,
                buckets: vec![(5, 1), (6, 1)],
            }],
            partition: Some(crate::PartitionInfo {
                index: 1,
                count: 2,
                total: 589,
            }),
            results: Some(vec![
                crate::ModuleResult {
                    name: "net_x0".into(),
                    no_confine: 2,
                    confine: 1,
                    all_strong: 0,
                },
                crate::ModuleResult {
                    name: "scsi_y1".into(),
                    no_confine: 1,
                    confine: 1,
                    all_strong: 1,
                },
            ]),
        };
        let v = parse(&bench.to_json()).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("localias-bench-experiment/v6")
        );
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(99));
        let hist = v.get("hist").unwrap().get("analyze.module").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
        // p50 hits bucket 5 (upper bound 31); p99 hits bucket 6, clamped
        // to the exact observed max.
        assert_eq!(hist.get("p50_ns").unwrap().as_u64(), Some(31));
        assert_eq!(hist.get("p99_ns").unwrap().as_u64(), Some(32));
        // Every registered histogram appears, sampled or not.
        let empty = v.get("hist").unwrap().get("fuzz.execute").unwrap();
        assert_eq!(empty.get("count").unwrap().as_u64(), Some(0));
        let p = v.get("partition").unwrap();
        assert_eq!(p.get("index").unwrap().as_usize(), Some(1));
        assert_eq!(p.get("count").unwrap().as_usize(), Some(2));
        assert_eq!(p.get("total").unwrap().as_usize(), Some(589));
        let rows = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_arr().unwrap()[0].as_str(), Some("net_x0"));
        assert_eq!(rows[1].as_arr().unwrap()[3].as_u64(), Some(1));
    }
}
