//! Differential soundness fuzzing: the interpreter as ground-truth
//! oracle for the static lock checker (`localias fuzz`).
//!
//! Each iteration draws a module from the seeded catalog generator
//! ([`localias_corpus::fuzz_module`]), runs the three checker modes
//! through both alias backends, and *executes* every defined function
//! under `localias-interp`, which detects real locking mistakes
//! (double acquire, release of an unheld lock) the way a kernel
//! lockdep would. The two verdicts are compared per entry function:
//!
//! * **unsound** — the entry faulted dynamically but no function it can
//!   reach (itself plus transitive defined callees) carries a static
//!   error under some mode × backend. The checker blessed a real bug;
//!   any such divergence fails the run.
//! * **theorem-1** — the module passes the checking analysis
//!   ([`localias_core::check`] reports no diagnostics and every
//!   explicit `restrict`/`confine` verifies) yet execution raises a
//!   restrict violation. Theorem 1 of the paper says this can never
//!   happen, so it too fails the run.
//! * **true/false positive** — a statically flagged function that does
//!   / does not fault under any executed entry. False positives are
//!   expected (the analysis is conservative); their *rate* per mode and
//!   backend is the report's precision metric.
//!
//! Reachability (not "errored in the same function") is the soundness
//! bar because the checker may attribute one dynamic mistake to a
//! different frame than the oracle does: a callee's unmet lock
//! requirement surfaces as a `CallRequirement` error at the caller,
//! and a havocked summary reports at the first post-havoc site.
//!
//! Divergences are shrunk to 1-minimal counterexamples by
//! [`shrink_source`]: repeatedly delete a top-level item, delete a
//! statement, or splice a control-flow statement's body inline, keeping
//! any edit that still diverges, until no single edit does. The checker
//! is pluggable ([`run_fuzz_with`]) so the harness tests can inject a
//! deliberately broken checker and watch the fuzzer catch and shrink
//! it.
//!
//! Everything is single-threaded and seeded: the same
//! [`FuzzConfig`] produces a byte-identical verdict
//! [`stream`](FuzzReport::stream), which the determinism tests pin.
//! See `DESIGN.md` §12.

use localias_alias::Backend;
use localias_ast::{parse_module, pretty, Block, ItemKind, Module, Stmt, StmtKind, TypeExpr};
use localias_core::SharedAnalysis;
use localias_corpus::fuzz_module;
use localias_cqual::{check_locks_shared, CallGraph, LockReport, Mode, MODES};
use localias_interp::memory::default_value;
use localias_interp::{Interp, RuntimeError, Value};
use localias_obs as obs;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Corpus seed; module `i` is a pure function of `(seed, i)`.
    pub seed: u64,
    /// Number of modules to generate and check.
    pub iterations: u64,
    /// Interpreter fuel per execution (statements + expressions).
    pub fuel: u64,
    /// Whether to shrink divergent modules to minimal counterexamples.
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iterations: 1000,
            fuel: 100_000,
            shrink: true,
        }
    }
}

/// Static lock reports per alias backend (outer index, [`Backend::ALL`]
/// order) and checker mode (inner index, [`MODES`] order).
#[derive(Debug, Clone, Default)]
pub struct StaticMatrix(pub [[LockReport; 3]; 2]);

/// The real checker under test: all three modes through both backends,
/// sharing one base analysis per backend via [`SharedAnalysis`].
pub fn real_static_matrix(m: &Module) -> StaticMatrix {
    let mut out = StaticMatrix::default();
    for backend in Backend::ALL {
        let mut shared = SharedAnalysis::new_with_backend(m, backend);
        for (mi, &mode) in MODES.iter().enumerate() {
            out.0[backend.index()][mi] = check_locks_shared(&mut shared, mode);
        }
    }
    out
}

/// Per-(mode × backend) precision tally over statically flagged
/// functions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeStats {
    /// Functions with at least one static error attributed to them.
    pub flagged_funs: u64,
    /// Flagged functions that also faulted dynamically.
    pub true_positive_funs: u64,
    /// Flagged functions that never faulted under any executed entry.
    pub false_positive_funs: u64,
}

impl ModeStats {
    /// Fraction of flagged functions that never faulted (0.0 when
    /// nothing was flagged).
    pub fn fp_rate(&self) -> f64 {
        if self.flagged_funs == 0 {
            0.0
        } else {
            self.false_positive_funs as f64 / self.flagged_funs as f64
        }
    }

    fn accumulate(&mut self, o: ModeStats) {
        self.flagged_funs += o.flagged_funs;
        self.true_positive_funs += o.true_positive_funs;
        self.false_positive_funs += o.false_positive_funs;
    }
}

/// How a module's static and dynamic verdicts disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A dynamic lock fault with no static error anywhere the entry
    /// reaches — the checker missed a real bug.
    Unsound,
    /// A check-clean module raised a restrict violation at run time,
    /// contradicting the paper's Theorem 1.
    Theorem1,
}

impl DivergenceKind {
    /// Lower-case tag used in the verdict stream and repro file names.
    pub fn name(self) -> &'static str {
        match self {
            DivergenceKind::Unsound => "unsound",
            DivergenceKind::Theorem1 => "theorem1",
        }
    }
}

/// One soundness divergence, with the module that exhibits it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Module name (`fuzz<index>`).
    pub module: String,
    /// Corpus index of the module (replay with the run's seed).
    pub index: u64,
    /// The entry function whose execution diverged.
    pub entry: String,
    /// Backend under which the checker missed the fault; `None` for
    /// Theorem-1 divergences (the gate is mode/backend-independent).
    pub backend: Option<Backend>,
    /// Mode under which the checker missed the fault; `None` for
    /// Theorem-1 divergences.
    pub mode: Option<Mode>,
    /// The divergence class.
    pub kind: DivergenceKind,
    /// The oracle's description of the dynamic fault.
    pub detail: String,
    /// Full source of the diverging module.
    pub source: String,
    /// 1-minimal shrunk source, when shrinking was enabled.
    pub shrunk: Option<String>,
}

/// The result of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Modules generated and differentially checked.
    pub modules: u64,
    /// Entry functions executed.
    pub entries: u64,
    /// Interpreter runs (entry × argument tuple).
    pub runs: u64,
    /// Dynamic lock faults observed across all runs.
    pub dyn_faults: u64,
    /// Runs that returned normally with a lock still held.
    pub leaks: u64,
    /// Runs ending in a memory/type/unbound execution error.
    pub exec_errors: u64,
    /// Runs that exhausted their fuel (inconclusive, not counted as
    /// ground truth).
    pub out_of_fuel: u64,
    /// Runs that raised a restrict violation (only divergent when the
    /// module was check-clean).
    pub restrict_violations: u64,
    /// Precision tallies, indexed `[backend][mode]` in
    /// [`Backend::ALL`] / [`MODES`] order.
    pub stats: [[ModeStats; 3]; 2],
    /// All soundness divergences found (empty on a clean run).
    pub divergences: Vec<Divergence>,
    /// Shrinker edits attempted.
    pub shrink_candidates: u64,
    /// Shrinker edits accepted.
    pub shrink_steps: u64,
    /// The deterministic per-module verdict stream (byte-identical for
    /// identical configs).
    pub stream: String,
}

impl FuzzReport {
    /// `true` when no soundness divergence was found.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Human-readable summary table.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fuzzed {} modules: {} entries, {} runs, {} dynamic faults, \
             {} leaks, {} restrict violations, {} fuel-outs, {} exec errors",
            self.modules,
            self.entries,
            self.runs,
            self.dyn_faults,
            self.leaks,
            self.restrict_violations,
            self.out_of_fuel,
            self.exec_errors,
        );
        let _ = writeln!(
            s,
            "false-positive rate (flagged functions that never fault):"
        );
        for backend in Backend::ALL {
            let mut row = format!("  {:<12}", backend.name());
            for (mi, &mode) in MODES.iter().enumerate() {
                let st = &self.stats[backend.index()][mi];
                let _ = write!(
                    row,
                    " {}={:.1}% ({}/{})",
                    mode_name(mode),
                    100.0 * st.fp_rate(),
                    st.false_positive_funs,
                    st.flagged_funs
                );
            }
            let _ = writeln!(s, "{row}");
        }
        let _ = writeln!(
            s,
            "shrinker: {} steps over {} candidates",
            self.shrink_steps, self.shrink_candidates
        );
        let _ = writeln!(s, "divergences: {}", self.divergences.len());
        for d in &self.divergences {
            let _ = writeln!(s, "  {}", divergence_line(d));
        }
        s
    }
}

/// Short lower-case mode tag.
pub fn mode_name(m: Mode) -> &'static str {
    match m {
        Mode::NoConfine => "noconfine",
        Mode::Confine => "confine",
        Mode::AllStrong => "allstrong",
    }
}

fn divergence_line(d: &Divergence) -> String {
    let at = match (d.backend, d.mode) {
        (Some(b), Some(m)) => format!(" backend={} mode={}", b.name(), mode_name(m)),
        _ => String::new(),
    };
    format!(
        "!! {} {} entry={}{}: {}",
        d.kind.name(),
        d.module,
        d.entry,
        at,
        d.detail
    )
}

/// A divergence detected inside [`check_one`], before the module source
/// is attached.
#[derive(Debug, Clone)]
struct Diverge {
    entry: String,
    backend: Option<Backend>,
    mode: Option<Mode>,
    kind: DivergenceKind,
    detail: String,
}

/// The differential verdict for one module.
#[derive(Debug, Clone, Default)]
struct ModuleOutcome {
    entries: u64,
    runs: u64,
    dyn_faults: u64,
    leaks: u64,
    exec_errors: u64,
    out_of_fuel: u64,
    restrict_violations: u64,
    /// Static error counts, `[backend][mode]`.
    errs: [[usize; 3]; 2],
    stats: [[ModeStats; 3]; 2],
    divergences: Vec<Diverge>,
}

/// The integer argument tuples an entry is executed under: indices
/// distinct per parameter (drives distinct-element paths), all ones
/// (drives guarded branches, recursion depth, and same-value aliasing),
/// and all zeros (the guard-off path). Deduplicated, so a nullary entry
/// runs once.
fn int_assignments(params: usize) -> Vec<Vec<i64>> {
    let mut out: Vec<Vec<i64>> = Vec::new();
    let distinct: Vec<i64> = (0..params as i64).collect();
    let ones = vec![1i64; params];
    let zeros = vec![0i64; params];
    for v in [distinct, ones, zeros] {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Functions reachable from `entry` in the call graph (itself plus
/// transitive defined callees).
fn reach_of(cg: &CallGraph, entry: &str) -> BTreeSet<String> {
    let mut seen = BTreeSet::new();
    let Some(start) = cg.node(entry) else {
        seen.insert(entry.to_string());
        return seen;
    };
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if seen.insert(cg.name(v).to_string()) {
            stack.extend_from_slice(cg.callees(v));
        }
    }
    seen
}

/// Differentially checks one parsed module: static matrix vs. the
/// interpreter oracle. Pure and deterministic — also the shrinker's
/// predicate.
fn check_one(m: &Module, fuel: u64, checker: &dyn Fn(&Module) -> StaticMatrix) -> ModuleOutcome {
    let matrix = {
        let _hist = obs::hist_timer!(obs::Hist::FuzzCheck);
        checker(m)
    };

    // Theorem-1 gate: does the plain checking analysis accept the
    // module? (Diagnostics clean, every explicit restrict/confine
    // verified.) Only then is a dynamic restrict violation a divergence.
    let check_clean = localias_core::check(m).clean();

    let cg = CallGraph::build(m);
    let mut out = ModuleOutcome::default();
    // Functions the oracle saw fault (by the frame the fault occurred
    // in), and entries whose execution produced at least one fault.
    let mut fault_funs: BTreeSet<String> = BTreeSet::new();
    let mut faulted_entries: Vec<(String, String)> = Vec::new();
    let mut theorem1: Option<(String, String)> = None;

    for f in m.functions() {
        let _hist = obs::hist_timer!(obs::Hist::FuzzExecute);
        out.entries += 1;
        let name = f.name.name.to_string();
        let mut first_fault: Option<String> = None;
        for ints in int_assignments(f.params.len()) {
            out.runs += 1;
            let mut interp = Interp::new(m, fuel);
            let args: Vec<Value> = f
                .params
                .iter()
                .enumerate()
                .map(|(pi, p)| match &p.ty {
                    TypeExpr::Int => Value::Int(ints[pi]),
                    TypeExpr::Ptr(inner) => interp.fresh_object(inner),
                    other => default_value(other),
                })
                .collect();
            let res = interp.call_entry(&name, &args);
            out.dyn_faults += interp.lock_faults.len() as u64;
            for lf in &interp.lock_faults {
                fault_funs.insert(lf.fun.clone());
                if first_fault.is_none() {
                    first_fault = Some(format!("{}: {}", lf.fun, lf.detail));
                }
            }
            match res {
                Ok(_) => {
                    if interp.held_locks() > 0 {
                        out.leaks += 1;
                    }
                }
                Err(RuntimeError::RestrictViolation { detail }) => {
                    out.restrict_violations += 1;
                    if check_clean && theorem1.is_none() {
                        theorem1 = Some((name.clone(), detail));
                    }
                }
                Err(RuntimeError::OutOfFuel) => out.out_of_fuel += 1,
                Err(_) => out.exec_errors += 1,
            }
        }
        if let Some(detail) = first_fault {
            faulted_entries.push((name, detail));
        }
    }

    // Reach sets only matter for entries that actually faulted.
    let reaches: Vec<(String, BTreeSet<String>, String)> = faulted_entries
        .into_iter()
        .map(|(entry, detail)| {
            let reach = reach_of(&cg, &entry);
            (entry, reach, detail)
        })
        .collect();

    for backend in Backend::ALL {
        for (mi, &mode) in MODES.iter().enumerate() {
            let rep = &matrix.0[backend.index()][mi];
            out.errs[backend.index()][mi] = rep.errors.len();
            let mut flagged: BTreeSet<&str> = BTreeSet::new();
            for e in &rep.errors {
                flagged.insert(e.fun.as_str());
            }
            let st = &mut out.stats[backend.index()][mi];
            for &fun in &flagged {
                st.flagged_funs += 1;
                if fault_funs.contains(fun) {
                    st.true_positive_funs += 1;
                } else {
                    st.false_positive_funs += 1;
                }
            }
            for (entry, reach, detail) in &reaches {
                if reach.iter().all(|g| !flagged.contains(g.as_str())) {
                    out.divergences.push(Diverge {
                        entry: entry.clone(),
                        backend: Some(backend),
                        mode: Some(mode),
                        kind: DivergenceKind::Unsound,
                        detail: detail.clone(),
                    });
                }
            }
        }
    }
    if let Some((entry, detail)) = theorem1 {
        out.divergences.push(Diverge {
            entry,
            backend: None,
            mode: None,
            kind: DivergenceKind::Theorem1,
            detail: format!("restrict violation: {detail}"),
        });
    }
    out
}

/// Runs the fuzzer against the real checker.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    run_fuzz_with(cfg, &real_static_matrix)
}

/// Runs the fuzzer against an arbitrary checker — the harness tests
/// inject a deliberately unsound one here and assert it is caught.
pub fn run_fuzz_with(cfg: &FuzzConfig, checker: &dyn Fn(&Module) -> StaticMatrix) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..cfg.iterations {
        let fm = fuzz_module(cfg.seed, i);
        let m = parse_module(&fm.name, &fm.source).unwrap_or_else(|e| {
            panic!(
                "fuzz generator produced an unparsable module \
                 (seed {}, index {i}): {e}\n{}",
                cfg.seed, fm.source
            )
        });
        let oc = check_one(&m, cfg.fuel, checker);

        report.modules += 1;
        report.entries += oc.entries;
        report.runs += oc.runs;
        report.dyn_faults += oc.dyn_faults;
        report.leaks += oc.leaks;
        report.exec_errors += oc.exec_errors;
        report.out_of_fuel += oc.out_of_fuel;
        report.restrict_violations += oc.restrict_violations;
        for b in 0..2 {
            for mi in 0..3 {
                report.stats[b][mi].accumulate(oc.stats[b][mi]);
            }
        }
        obs::count(obs::Counter::FuzzModules, 1);
        obs::count(obs::Counter::FuzzEntries, oc.entries);
        obs::count(obs::Counter::FuzzRuns, oc.runs);
        obs::count(obs::Counter::FuzzDynFaults, oc.dyn_faults);

        let _ = writeln!(
            report.stream,
            "{} idioms={} entries={} runs={} faults={} st={}/{}/{} an={}/{}/{}",
            fm.name,
            fm.idioms.join("+"),
            oc.entries,
            oc.runs,
            oc.dyn_faults,
            oc.errs[0][0],
            oc.errs[0][1],
            oc.errs[0][2],
            oc.errs[1][0],
            oc.errs[1][1],
            oc.errs[1][2],
        );

        // One shrink per (module, kind): divergences of the same kind
        // share the predicate, so they shrink to the same witness.
        let mut shrunk_by_kind: [Option<String>; 2] = [None, None];
        for d in oc.divergences {
            obs::count(obs::Counter::FuzzUnsound, 1);
            let slot = match d.kind {
                DivergenceKind::Unsound => 0,
                DivergenceKind::Theorem1 => 1,
            };
            let shrunk = if cfg.shrink {
                if shrunk_by_kind[slot].is_none() {
                    let sh = shrink_source(&fm.name, &fm.source, cfg.fuel, checker, d.kind);
                    report.shrink_candidates += sh.candidates;
                    report.shrink_steps += sh.steps;
                    shrunk_by_kind[slot] = Some(sh.source);
                }
                shrunk_by_kind[slot].clone()
            } else {
                None
            };
            let full = Divergence {
                module: fm.name.clone(),
                index: i,
                entry: d.entry,
                backend: d.backend,
                mode: d.mode,
                kind: d.kind,
                detail: d.detail,
                source: fm.source.clone(),
                shrunk,
            };
            let _ = writeln!(report.stream, "{}", divergence_line(&full));
            report.divergences.push(full);
        }
    }
    for b in 0..2 {
        for mi in 0..3 {
            obs::count(
                obs::Counter::FuzzFalsePositives,
                report.stats[b][mi].false_positive_funs,
            );
        }
    }
    report
}

// ---------------------------------------------------------------------
// Counterexample shrinking
// ---------------------------------------------------------------------

/// Result of shrinking one diverging module.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The 1-minimal diverging source (canonically pretty-printed).
    pub source: String,
    /// Candidate edits attempted.
    pub candidates: u64,
    /// Edits accepted (each strictly shrank the module).
    pub steps: u64,
}

/// Path to a statement: descend through `(statement index, sub-block
/// selector)` pairs, then index `at` in the final block.
#[derive(Debug, Clone)]
struct StmtAddr {
    descend: Vec<(usize, u8)>,
    at: usize,
}

/// One candidate shrinking edit.
#[derive(Debug, Clone)]
enum Edit {
    /// Delete top-level item `i`.
    RemoveItem(usize),
    /// Delete the statement at `addr` in function item `item`.
    RemoveStmt { item: usize, addr: StmtAddr },
    /// Replace the control-flow statement at `addr` with its nested
    /// statements, spliced inline (`if`/`while`/`restrict`/`confine`/
    /// bare block).
    Splice { item: usize, addr: StmtAddr },
}

/// The nested blocks of a statement, in a fixed selector order.
fn sub_blocks(s: &StmtKind) -> Vec<&Block> {
    match s {
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            let mut v = vec![then_blk];
            if let Some(e) = else_blk {
                v.push(e);
            }
            v
        }
        StmtKind::While { body, .. }
        | StmtKind::Restrict { body, .. }
        | StmtKind::Confine { body, .. } => vec![body],
        StmtKind::Block(b) => vec![b],
        _ => Vec::new(),
    }
}

fn sub_blocks_mut(s: &mut StmtKind) -> Vec<&mut Block> {
    match s {
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            let mut v = vec![then_blk];
            if let Some(e) = else_blk {
                v.push(e);
            }
            v
        }
        StmtKind::While { body, .. }
        | StmtKind::Restrict { body, .. }
        | StmtKind::Confine { body, .. } => vec![body],
        StmtKind::Block(b) => vec![b],
        _ => Vec::new(),
    }
}

/// The statements inside a control-flow statement, concatenated — what
/// a splice leaves behind. `None` for leaf statements.
fn spliced_stmts(kind: StmtKind) -> Option<Vec<Stmt>> {
    match kind {
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            let mut v = then_blk.stmts;
            if let Some(e) = else_blk {
                v.extend(e.stmts);
            }
            Some(v)
        }
        StmtKind::While { body, .. }
        | StmtKind::Restrict { body, .. }
        | StmtKind::Confine { body, .. } => Some(body.stmts),
        StmtKind::Block(b) => Some(b.stmts),
        _ => None,
    }
}

fn collect_stmt_edits(b: &Block, item: usize, descend: &mut Vec<(usize, u8)>, out: &mut Vec<Edit>) {
    for (si, s) in b.stmts.iter().enumerate() {
        let addr = StmtAddr {
            descend: descend.clone(),
            at: si,
        };
        out.push(Edit::RemoveStmt {
            item,
            addr: addr.clone(),
        });
        let subs = sub_blocks(&s.kind);
        if !subs.is_empty() {
            out.push(Edit::Splice { item, addr });
            for (bi, sub) in subs.into_iter().enumerate() {
                descend.push((si, bi as u8));
                collect_stmt_edits(sub, item, descend, out);
                descend.pop();
            }
        }
    }
}

/// All candidate edits of `m`, coarsest first (whole items, then
/// statements in pre-order). The fixed order keeps shrinking
/// deterministic.
fn enumerate_edits(m: &Module) -> Vec<Edit> {
    let mut out = Vec::new();
    for i in 0..m.items.len() {
        out.push(Edit::RemoveItem(i));
    }
    for (i, item) in m.items.iter().enumerate() {
        if let ItemKind::Fun(f) = &item.kind {
            collect_stmt_edits(&f.body, i, &mut Vec::new(), &mut out);
        }
    }
    out
}

/// Navigates to the block `addr.descend` points into, inside function
/// item `item`.
fn block_at_mut<'a>(
    m: &'a mut Module,
    item: usize,
    descend: &[(usize, u8)],
) -> Option<&'a mut Block> {
    let f = match &mut m.items.get_mut(item)?.kind {
        ItemKind::Fun(f) => f,
        _ => return None,
    };
    let mut blk = &mut f.body;
    for &(si, bi) in descend {
        let s = blk.stmts.get_mut(si)?;
        blk = sub_blocks_mut(&mut s.kind).into_iter().nth(bi as usize)?;
    }
    Some(blk)
}

/// Applies `e` to `m`; `false` if the address no longer exists.
fn apply_edit(m: &mut Module, e: &Edit) -> bool {
    match e {
        Edit::RemoveItem(i) => {
            if *i < m.items.len() {
                m.items.remove(*i);
                true
            } else {
                false
            }
        }
        Edit::RemoveStmt { item, addr } => {
            let Some(blk) = block_at_mut(m, *item, &addr.descend) else {
                return false;
            };
            if addr.at < blk.stmts.len() {
                blk.stmts.remove(addr.at);
                true
            } else {
                false
            }
        }
        Edit::Splice { item, addr } => {
            let Some(blk) = block_at_mut(m, *item, &addr.descend) else {
                return false;
            };
            if addr.at >= blk.stmts.len() {
                return false;
            }
            let s = blk.stmts.remove(addr.at);
            match spliced_stmts(s.kind) {
                Some(inner) => {
                    blk.stmts.splice(addr.at..addr.at, inner);
                    true
                }
                None => false,
            }
        }
    }
}

/// Shrinks `source` to a 1-minimal module that still exhibits a
/// divergence of `kind` under `checker`: no single item deletion,
/// statement deletion, or body splice preserves the divergence.
/// Deterministic — the edit order is fixed and the first accepted edit
/// restarts the pass on the smaller module.
pub fn shrink_source(
    name: &str,
    source: &str,
    fuel: u64,
    checker: &dyn Fn(&Module) -> StaticMatrix,
    kind: DivergenceKind,
) -> ShrinkOutcome {
    let mut candidates = 0u64;
    let mut steps = 0u64;
    let diverges = |src: &str| -> bool {
        match parse_module(name, src) {
            Ok(m) => check_one(&m, fuel, checker)
                .divergences
                .iter()
                .any(|d| d.kind == kind),
            Err(_) => false,
        }
    };

    // Canonicalize formatting so the output is print-stable.
    let mut cur = match parse_module(name, source) {
        Ok(m) => pretty::print_module(&m),
        Err(_) => {
            return ShrinkOutcome {
                source: source.to_string(),
                candidates,
                steps,
            }
        }
    };
    if !diverges(&cur) {
        // Caller handed us a non-diverging module; nothing to shrink.
        return ShrinkOutcome {
            source: cur,
            candidates,
            steps,
        };
    }

    loop {
        let m = parse_module(name, &cur).expect("shrink state re-parses");
        let mut advanced = false;
        for e in enumerate_edits(&m) {
            let mut m2 = m.clone();
            if !apply_edit(&mut m2, &e) {
                continue;
            }
            let src2 = pretty::print_module(&m2);
            if src2 == cur {
                continue;
            }
            candidates += 1;
            obs::count(obs::Counter::FuzzShrinkCandidates, 1);
            if diverges(&src2) {
                cur = src2;
                steps += 1;
                obs::count(obs::Counter::FuzzShrinkSteps, 1);
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    ShrinkOutcome {
        source: cur,
        candidates,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_assignments_dedupe() {
        assert_eq!(int_assignments(0), vec![Vec::<i64>::new()]);
        assert_eq!(int_assignments(1), vec![vec![0], vec![1]]);
        assert_eq!(int_assignments(2), vec![vec![0, 1], vec![1, 1], vec![0, 0]]);
    }

    #[test]
    fn real_checker_catches_a_planted_bug() {
        let m = parse_module(
            "planted",
            "lock mu;\nvoid f() { spin_lock(&mu); spin_lock(&mu); }\n",
        )
        .unwrap();
        let oc = check_one(&m, 100_000, &real_static_matrix);
        assert!(oc.dyn_faults > 0, "oracle sees the double acquire");
        assert!(oc.divergences.is_empty(), "checker flags it too");
        for b in 0..2 {
            for mi in 0..3 {
                assert_eq!(oc.stats[b][mi].true_positive_funs, 1);
            }
        }
    }

    #[test]
    fn blind_checker_is_unsound_and_shrinks_minimal() {
        let blind = |_m: &Module| StaticMatrix::default();
        let m = parse_module(
            "planted",
            "lock mu;\nint x;\nvoid f() { x = 1; spin_lock(&mu); spin_lock(&mu); }\n",
        )
        .unwrap();
        let oc = check_one(&m, 100_000, &blind);
        assert_eq!(
            oc.divergences.len(),
            6,
            "unsound under every mode x backend"
        );
        let src = pretty::print_module(&m);
        let sh = shrink_source("planted", &src, 100_000, &blind, DivergenceKind::Unsound);
        assert!(sh.steps > 0, "something was deleted");
        // The globals `x` and the store to it must be gone; the two
        // acquires and the lock declaration must survive.
        assert!(
            !sh.source.contains('x'),
            "irrelevant global removed:\n{}",
            sh.source
        );
        assert_eq!(sh.source.matches("spin_lock").count(), 2, "{}", sh.source);
        // 1-minimality: no single further edit still diverges.
        let min = parse_module("planted", &sh.source).unwrap();
        for e in enumerate_edits(&min) {
            let mut m2 = min.clone();
            if !apply_edit(&mut m2, &e) {
                continue;
            }
            let src2 = pretty::print_module(&m2);
            if src2 == sh.source {
                continue;
            }
            let still = match parse_module("planted", &src2) {
                Ok(p) => check_one(&p, 100_000, &blind)
                    .divergences
                    .iter()
                    .any(|d| d.kind == DivergenceKind::Unsound),
                Err(_) => false,
            };
            assert!(
                !still,
                "not 1-minimal; edit left a diverging module:\n{src2}"
            );
        }
        // Determinism.
        let sh2 = shrink_source("planted", &src, 100_000, &blind, DivergenceKind::Unsound);
        assert_eq!(sh.source, sh2.source);
    }
}
