//! Shared command-line parsing for the experiment entry points.
//!
//! `experiment` (the `localias` CLI), `summary`, `fig6`, `fig7`,
//! `precision`, and `perf` all accept the same surface:
//!
//! ```text
//! [SEED] [--jobs N | -j N] [--intra-jobs N] [--alias BACKEND]
//! [--cache DIR | --no-cache] [--cache-shards N] [--modules N]
//! [--partition I/N] [--bench-out FILE] [--trace-out FILE]
//! [--trace-chrome FILE] [--profile] [--quiet | -q]
//! ```
//!
//! so the cache flags land in exactly one place instead of being re-wired
//! per binary (which is how `--jobs` used to work). Conflicting cache
//! flags (`--no-cache` together with `--cache` or `--cache-shards`) are
//! rejected up front, in either order, rather than resolving by flag
//! position — and `--partition` (which cooperates through the shared
//! cache) conflicts with `--no-cache` the same way.

use crate::cache::{CachePolicy, DEFAULT_SHARDS, MAX_SHARDS};
use localias_alias::Backend;
use localias_corpus::DEFAULT_SEED;
use std::path::PathBuf;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct CliOpts {
    /// Worker threads (`0` = all available cores).
    pub jobs: usize,
    /// Worker threads per wave *inside* one module's lock check (`1` =
    /// sequential, `0` = all available cores). Orthogonal to `jobs`:
    /// `--jobs` fans out across modules, `--intra-jobs` across the
    /// independent functions of one module's call-graph wave.
    pub intra_jobs: usize,
    /// Corpus seed, when given positionally.
    pub seed: Option<u64>,
    /// Result-cache policy (default: enabled under `.localias-cache/`,
    /// partitioned into [`DEFAULT_SHARDS`] shard files).
    pub cache: CachePolicy,
    /// Whether any cache flag (`--cache`/`--no-cache`/`--cache-shards`)
    /// was given explicitly (lets binaries that ignore the cache warn
    /// instead of silently dropping the flag).
    pub cache_explicit: bool,
    /// Where to write the machine-readable bench report, if anywhere.
    pub bench_out: Option<String>,
    /// Where to write the `localias-trace/v2` JSON-lines trace, if
    /// anywhere. Giving this installs the obs sinks.
    pub trace_out: Option<String>,
    /// Where to write the Chrome trace-event timeline (opens in
    /// Perfetto / `chrome://tracing`), if anywhere. Also installs the
    /// obs sinks.
    pub trace_chrome: Option<String>,
    /// Print the human per-phase profile table to stderr after the run.
    /// Also installs the obs sinks.
    pub profile: bool,
    /// Silence informational diagnostics (warnings still print).
    pub quiet: bool,
    /// Corpus size override (`--modules N`): sweep an `N`-module stream
    /// instead of the paper's 589.
    pub modules: Option<usize>,
    /// Partitioned sweep (`--partition I/N`): this process covers
    /// contiguous slice `I` of `N` disjoint slices of the seeded stream.
    pub partition: Option<(usize, usize)>,
    /// Alias backend the frozen snapshots are produced through
    /// (`--alias steensgaard|andersen`; default Steensgaard, the paper's
    /// configuration).
    pub alias: Backend,
}

impl CliOpts {
    /// Parses an argument list (without the program name).
    pub fn parse<I>(args: I) -> Result<CliOpts, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut jobs: Option<usize> = None;
        let mut intra_jobs: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut cache_dir: Option<String> = None;
        let mut cache_shards: Option<usize> = None;
        let mut no_cache = false;
        let mut bench_out: Option<String> = None;
        let mut trace_out: Option<String> = None;
        let mut trace_chrome: Option<String> = None;
        let mut profile = false;
        let mut quiet = false;
        let mut modules: Option<usize> = None;
        let mut partition: Option<(usize, usize)> = None;
        let mut alias: Option<String> = None;

        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--jobs" | "-j" => {
                    if jobs.is_some() {
                        return Err(format!("{a} given more than once"));
                    }
                    let val = value_of(&mut it, &a, "a thread count")?;
                    jobs = Some(
                        val.parse()
                            .map_err(|_| format!("bad thread count `{val}`"))?,
                    );
                }
                "--intra-jobs" => {
                    if intra_jobs.is_some() {
                        return Err(format!("{a} given more than once"));
                    }
                    let val = value_of(&mut it, &a, "a thread count")?;
                    intra_jobs = Some(
                        val.parse()
                            .map_err(|_| format!("bad thread count `{val}`"))?,
                    );
                }
                "--cache" => {
                    if cache_dir.is_some() {
                        return Err("--cache given more than once".into());
                    }
                    cache_dir = Some(value_of(&mut it, &a, "a directory")?);
                }
                "--cache-shards" => {
                    if cache_shards.is_some() {
                        return Err("--cache-shards given more than once".into());
                    }
                    let val = value_of(&mut it, &a, "a shard count")?;
                    let n: usize = val
                        .parse()
                        .map_err(|_| format!("bad shard count `{val}`"))?;
                    if !(1..=MAX_SHARDS).contains(&n) {
                        return Err(format!(
                            "--cache-shards must be between 1 and {MAX_SHARDS} (got {n})"
                        ));
                    }
                    cache_shards = Some(n);
                }
                "--no-cache" => no_cache = true,
                "--alias" => {
                    if alias.is_some() {
                        return Err("--alias given more than once".into());
                    }
                    alias = Some(value_of(&mut it, &a, "a backend name")?);
                }
                "--modules" => {
                    if modules.is_some() {
                        return Err("--modules given more than once".into());
                    }
                    let val = value_of(&mut it, &a, "a module count")?;
                    let n: usize = val
                        .parse()
                        .map_err(|_| format!("bad module count `{val}`"))?;
                    if n == 0 {
                        return Err("--modules must be at least 1".into());
                    }
                    modules = Some(n);
                }
                "--partition" => {
                    if partition.is_some() {
                        return Err("--partition given more than once".into());
                    }
                    let val = value_of(&mut it, &a, "a slice spec I/N")?;
                    partition = Some(parse_partition(&val)?);
                }
                "--bench-out" => {
                    if bench_out.is_some() {
                        return Err("--bench-out given more than once".into());
                    }
                    bench_out = Some(value_of(&mut it, &a, "a file path")?);
                }
                "--trace-out" => {
                    if trace_out.is_some() {
                        return Err("--trace-out given more than once".into());
                    }
                    trace_out = Some(value_of(&mut it, &a, "a file path")?);
                }
                "--trace-chrome" => {
                    if trace_chrome.is_some() {
                        return Err("--trace-chrome given more than once".into());
                    }
                    trace_chrome = Some(value_of(&mut it, &a, "a file path")?);
                }
                "--profile" => profile = true,
                "--quiet" | "-q" => quiet = true,
                flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
                positional => {
                    if seed.is_some() {
                        return Err(format!("unexpected extra argument `{positional}`"));
                    }
                    seed = Some(
                        positional
                            .parse()
                            .map_err(|_| format!("bad seed `{positional}`"))?,
                    );
                }
            }
        }

        // Value validation and conflicts are checked after the whole
        // argument list is read, so rejection cannot depend on flag order.
        let alias = match &alias {
            None => Backend::Steensgaard,
            Some(name) => Backend::parse(name)?,
        };
        if no_cache && cache_dir.is_some() {
            return Err("--cache and --no-cache are mutually exclusive".into());
        }
        if no_cache && cache_shards.is_some() {
            return Err("--cache-shards and --no-cache are mutually exclusive".into());
        }
        if no_cache && partition.is_some() {
            // Partitioned processes cooperate through the shared on-disk
            // cache; without it the merge step has nothing to union over.
            return Err("--partition and --no-cache are mutually exclusive".into());
        }
        let cache_explicit = no_cache || cache_dir.is_some() || cache_shards.is_some();
        let cache = if no_cache {
            CachePolicy::Disabled
        } else {
            CachePolicy::Dir {
                dir: cache_dir
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from(".localias-cache")),
                shards: cache_shards.unwrap_or(DEFAULT_SHARDS),
            }
        };
        Ok(CliOpts {
            jobs: jobs.unwrap_or(0),
            intra_jobs: intra_jobs.unwrap_or(1),
            seed,
            cache,
            cache_explicit,
            bench_out,
            trace_out,
            trace_chrome,
            profile,
            quiet,
            modules,
            partition,
            alias,
        })
    }

    /// The seed to sweep: the positional argument, or the paper corpus
    /// default.
    pub fn seed_or_default(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_SEED)
    }

    /// `true` if an observability sink was requested (`--trace-out`,
    /// `--trace-chrome`, or `--profile`) — the gate for enabling
    /// span/counter collection. Histograms are collected regardless
    /// (see [`crate::init_obs`]): every bench artifact carries latency
    /// percentiles.
    pub fn wants_obs(&self) -> bool {
        self.trace_out.is_some() || self.trace_chrome.is_some() || self.profile
    }

    /// Applies the logging-related options: `--quiet` lowers the global
    /// level to warnings-only, and `LOCALIAS_LOG` (if set and valid)
    /// overrides everything.
    pub fn apply_log_level(&self) {
        if self.quiet {
            localias_obs::set_level(localias_obs::Level::Warn);
        }
        let _ = localias_obs::init_from_env();
    }
}

/// Parses and validates a `--partition` slice spec of the form `I/N`.
fn parse_partition(spec: &str) -> Result<(usize, usize), String> {
    let (index, count) = spec
        .split_once('/')
        .ok_or_else(|| format!("bad partition spec `{spec}` (expected I/N, e.g. 0/2)"))?;
    let index: usize = index
        .parse()
        .map_err(|_| format!("bad partition index `{index}` in `{spec}`"))?;
    let count: usize = count
        .parse()
        .map_err(|_| format!("bad partition count `{count}` in `{spec}`"))?;
    if count == 0 {
        return Err(format!(
            "bad partition spec `{spec}`: the partition count must be at least 1"
        ));
    }
    if index >= count {
        return Err(format!(
            "bad partition spec `{spec}`: index {index} is out of range for {count} \
             partitions (valid indices are 0..{count})"
        ));
    }
    Ok((index, count))
}

fn value_of<I>(it: &mut I, flag: &str, what: &str) -> Result<String, String>
where
    I: Iterator<Item = String>,
{
    it.next().ok_or_else(|| format!("{flag} requires {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOpts, String> {
        CliOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.jobs, 0);
        assert_eq!(
            o.intra_jobs, 1,
            "intra-module checking defaults to sequential"
        );
        assert_eq!(o.seed, None);
        assert_eq!(o.seed_or_default(), DEFAULT_SEED);
        assert_eq!(o.cache, CachePolicy::enabled_default());
        assert!(!o.cache_explicit);
        assert_eq!(o.bench_out, None);
        assert_eq!(o.trace_out, None);
        assert!(!o.profile);
        assert!(!o.quiet);
        assert!(!o.wants_obs(), "no sink unless explicitly requested");
    }

    #[test]
    fn obs_flags() {
        let o = parse(&["--trace-out", "t.jsonl"]).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("t.jsonl"));
        assert!(o.wants_obs());

        let o = parse(&["--profile"]).unwrap();
        assert!(o.profile);
        assert!(o.wants_obs());

        let o = parse(&["--trace-chrome", "t.chrome.json"]).unwrap();
        assert_eq!(o.trace_chrome.as_deref(), Some("t.chrome.json"));
        assert!(o.wants_obs());

        let o = parse(&["--quiet"]).unwrap();
        assert!(o.quiet);
        assert!(!o.wants_obs(), "--quiet alone installs no sink");
        assert!(parse(&["-q"]).unwrap().quiet);

        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--trace-out", "a", "--trace-out", "b"]).is_err());
        assert!(parse(&["--trace-chrome"]).is_err());
        assert!(parse(&["--trace-chrome", "a", "--trace-chrome", "b"]).is_err());
    }

    #[test]
    fn full_surface() {
        let o = parse(&[
            "31337",
            "-j",
            "4",
            "--intra-jobs",
            "2",
            "--cache",
            "/tmp/c",
            "--cache-shards",
            "32",
            "--bench-out",
            "b.json",
        ])
        .unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.intra_jobs, 2);
        assert_eq!(o.seed, Some(31337));
        assert_eq!(
            o.cache,
            CachePolicy::Dir {
                dir: "/tmp/c".into(),
                shards: 32
            }
        );
        assert!(o.cache_explicit);
        assert_eq!(o.bench_out.as_deref(), Some("b.json"));
    }

    #[test]
    fn cache_shards_defaults_and_bounds() {
        let o = parse(&[]).unwrap();
        assert!(matches!(o.cache, CachePolicy::Dir { shards, .. } if shards == DEFAULT_SHARDS));

        let o = parse(&["--cache-shards", "1"]).unwrap();
        assert!(matches!(o.cache, CachePolicy::Dir { shards: 1, .. }));
        assert!(o.cache_explicit, "--cache-shards is a cache flag");

        assert!(parse(&["--cache-shards"]).is_err());
        assert!(parse(&["--cache-shards", "x"]).is_err());
        assert!(parse(&["--cache-shards", "0"]).is_err());
        assert!(parse(&["--cache-shards", "257"]).is_err());
        assert!(parse(&["--cache-shards", "4", "--cache-shards", "4"]).is_err());
    }

    #[test]
    fn no_cache_disables() {
        let o = parse(&["--no-cache"]).unwrap();
        assert_eq!(o.cache, CachePolicy::Disabled);
        assert!(o.cache_explicit);
    }

    /// `--no-cache` must conflict with the other cache flags *in either
    /// order* — never resolve silently by flag position.
    #[test]
    fn cache_flag_conflicts_are_order_independent() {
        for args in [
            &["--cache", "d", "--no-cache"][..],
            &["--no-cache", "--cache", "d"][..],
            &["--cache-shards", "4", "--no-cache"][..],
            &["--no-cache", "--cache-shards", "4"][..],
            &["--cache", "d", "--no-cache", "--cache-shards", "4"][..],
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains("mutually exclusive"), "{args:?}: {err}");
        }
        // The compatible combination still parses.
        let o = parse(&["--cache", "d", "--cache-shards", "4"]).unwrap();
        assert_eq!(
            o.cache,
            CachePolicy::Dir {
                dir: "d".into(),
                shards: 4
            }
        );
    }

    #[test]
    fn modules_and_partition_parse() {
        let o = parse(&["--modules", "50000", "--partition", "1/4"]).unwrap();
        assert_eq!(o.modules, Some(50000));
        assert_eq!(o.partition, Some((1, 4)));

        let o = parse(&[]).unwrap();
        assert_eq!(o.modules, None, "paper corpus size unless overridden");
        assert_eq!(o.partition, None, "unpartitioned by default");

        // A single-partition sweep is legal (useful for scripting).
        assert_eq!(
            parse(&["--partition", "0/1"]).unwrap().partition,
            Some((0, 1))
        );
    }

    #[test]
    fn modules_and_partition_validation() {
        assert!(parse(&["--modules"]).is_err());
        assert!(parse(&["--modules", "x"]).is_err());
        assert!(parse(&["--modules", "0"]).is_err());
        assert!(parse(&["--modules", "1", "--modules", "2"]).is_err());

        assert!(parse(&["--partition"]).is_err());
        assert!(parse(&["--partition", "1"]).is_err(), "missing /N");
        assert!(parse(&["--partition", "x/y"]).is_err());
        assert!(parse(&["--partition", "1/"]).is_err());
        assert!(parse(&["--partition", "/2"]).is_err());
        assert!(parse(&["--partition", "0/2", "--partition", "1/2"]).is_err());

        let err = parse(&["--partition", "0/0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&["--partition", "2/2"]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = parse(&["--partition", "5/4"]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    /// Like the cache-flag conflicts above: `--partition` needs the
    /// shared cache, so `--no-cache` is rejected in either flag order.
    #[test]
    fn partition_no_cache_conflict_is_order_independent() {
        for args in [
            &["--partition", "0/2", "--no-cache"][..],
            &["--no-cache", "--partition", "0/2"][..],
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains("mutually exclusive"), "{args:?}: {err}");
        }
        // --partition composes with the other cache flags.
        let o = parse(&["--partition", "0/2", "--cache", "d"]).unwrap();
        assert_eq!(o.partition, Some((0, 2)));
        assert!(matches!(o.cache, CachePolicy::Dir { .. }));
    }

    #[test]
    fn alias_backend_parses_and_defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.alias, Backend::Steensgaard, "paper configuration");

        let o = parse(&["--alias", "steensgaard"]).unwrap();
        assert_eq!(o.alias, Backend::Steensgaard);
        let o = parse(&["--alias", "andersen"]).unwrap();
        assert_eq!(o.alias, Backend::Andersen);

        // Composes with the rest of the surface.
        let o = parse(&["7", "--alias", "andersen", "-j", "2"]).unwrap();
        assert_eq!((o.seed, o.alias, o.jobs), (Some(7), Backend::Andersen, 2));

        assert!(parse(&["--alias"]).is_err());
        assert!(parse(&["--alias", "a", "--alias", "b"]).is_err());
    }

    /// An invalid backend name must fail with a message that teaches the
    /// valid spellings.
    #[test]
    fn alias_backend_error_lists_valid_backends() {
        let err = parse(&["--alias", "unification"]).unwrap_err();
        assert!(err.contains("unification"), "{err}");
        assert!(err.contains("steensgaard"), "{err}");
        assert!(err.contains("andersen"), "{err}");
    }

    #[test]
    fn errors() {
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "x"]).is_err());
        assert!(parse(&["-j", "1", "--jobs", "2"]).is_err());
        assert!(parse(&["--intra-jobs"]).is_err());
        assert!(parse(&["--intra-jobs", "x"]).is_err());
        assert!(parse(&["--intra-jobs", "1", "--intra-jobs", "2"]).is_err());
        assert!(parse(&["--cache"]).is_err());
        assert!(parse(&["--cache", "d", "--no-cache"]).is_err());
        assert!(parse(&["--bench-out"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["notanumber"]).is_err());
        assert!(parse(&["1", "2"]).is_err());
    }
}
