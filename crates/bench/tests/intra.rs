//! Integration tests for the intra-module (wave-parallel) checking
//! pipeline on the synthesized mega-module.

use localias_bench::ModuleResult;
use localias_corpus::mega_module;
use localias_cqual::{check_locks_shared_jobs, check_locks_shared_timed, Mode};

const MODES: [Mode; 3] = [Mode::NoConfine, Mode::Confine, Mode::AllStrong];

#[test]
fn mega_module_generator_is_deterministic() {
    let a = mega_module(20030609, 60);
    let b = mega_module(20030609, 60);
    assert_eq!(a.source, b.source);
    assert_eq!(a.name, b.name);
}

#[test]
fn mega_module_matches_its_expected_triple() {
    let m = mega_module(20030609, 60);
    let r = ModuleResult::measure(&m);
    assert_eq!(
        (r.no_confine, r.confine, r.all_strong),
        (m.expect.no_confine, m.expect.confine, m.expect.all_strong),
        "mega-module error triple"
    );
}

/// `--intra-jobs 1` vs `N`: byte-identical reports across all three
/// modes — the pinned acceptance criterion of the wave-parallel checker.
#[test]
fn mega_module_reports_are_thread_invariant() {
    let m = mega_module(20030609, 60);
    let parsed = m.parse();
    for mode in MODES {
        let mut shared = localias_core::SharedAnalysis::new(&parsed);
        let sequential = check_locks_shared_jobs(&mut shared, mode, 1);
        for jobs in [0, 2, 4, 8] {
            let mut shared = localias_core::SharedAnalysis::new(&parsed);
            let parallel = check_locks_shared_jobs(&mut shared, mode, jobs);
            assert_eq!(parallel, sequential, "{mode:?} at intra_jobs={jobs}");
        }
    }
}

/// The wave schedule of the three-layer mega DAG: every function is
/// checked exactly once, and the timed entry point agrees with the
/// untimed one.
#[test]
fn mega_module_wave_stats_cover_every_function() {
    let m = mega_module(20030609, 60);
    let parsed = m.parse();
    let mut shared = localias_core::SharedAnalysis::new(&parsed);
    let (report, stats) = check_locks_shared_timed(&mut shared, Mode::NoConfine, 4);
    assert_eq!(stats.functions, 60);
    let waved: usize = stats.waves.iter().map(|w| w.functions).sum();
    assert_eq!(waved, 60, "each function in exactly one wave");
    assert!(stats.waves.len() >= 3, "three-layer DAG has >= 3 waves");
    assert_eq!(report.error_count(), m.expect.no_confine);
}
