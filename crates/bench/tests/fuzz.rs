//! Harness tests for the differential fuzzer: determinism of the
//! corpus and verdict stream, and the end-to-end oracle property that
//! a deliberately broken checker is caught as unsound and shrunk to a
//! deterministic, 1-minimal counterexample.

use localias_ast::{parse_module, pretty, Module};
use localias_bench::fuzz::{
    real_static_matrix, run_fuzz, run_fuzz_with, shrink_source, DivergenceKind, FuzzConfig,
    StaticMatrix,
};
use localias_corpus::fuzz_module;

fn cfg(iterations: u64, shrink: bool) -> FuzzConfig {
    FuzzConfig {
        seed: 42,
        iterations,
        fuel: 100_000,
        shrink,
    }
}

#[test]
fn same_seed_gives_byte_identical_corpus_and_verdict_stream() {
    // Corpus: module i of seed s is a pure function of (s, i).
    for i in 0..50 {
        assert_eq!(fuzz_module(42, i).source, fuzz_module(42, i).source);
    }
    // Full differential run: stream, tallies, and divergence list all
    // replay byte-identically.
    let a = run_fuzz(&cfg(60, true));
    let b = run_fuzz(&cfg(60, true));
    assert_eq!(a.stream, b.stream);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.dyn_faults, b.dyn_faults);
    assert!(!a.stream.is_empty());
    // A different seed draws a different corpus (and thus stream).
    let c = run_fuzz(&FuzzConfig {
        seed: 7,
        ..cfg(60, true)
    });
    assert_ne!(a.stream, c.stream);
}

#[test]
fn real_checker_survives_a_fuzz_sweep() {
    let report = run_fuzz(&cfg(250, true));
    assert!(
        report.clean(),
        "soundness divergences against the interpreter oracle:\n{}",
        report.summary()
    );
    assert_eq!(report.exec_errors, 0, "generated modules execute cleanly");
    assert!(report.dyn_faults > 0, "adversarial idioms actually fault");
    // The conservative ordering the paper predicts: confine inference
    // strictly improves on no-confine, all-strong bounds both.
    for b in 0..2 {
        let [nc, cf, st] = &report.stats[b];
        assert!(nc.false_positive_funs >= cf.false_positive_funs);
        assert!(cf.false_positive_funs >= st.false_positive_funs);
        // Flagged-function recall is mode-independent: every dynamic
        // fault is flagged somewhere (no divergences above), and true
        // positives don't vary across modes on this corpus.
        assert_eq!(nc.true_positive_funs, cf.true_positive_funs);
    }
}

/// A checker that sees nothing: every report empty under every mode
/// and backend. The fuzzer must convict it.
fn blind_checker(_m: &Module) -> StaticMatrix {
    StaticMatrix::default()
}

#[test]
fn broken_checker_is_caught_as_unsound() {
    // No shrinking here — this pins *detection*; shrinking is pinned
    // separately on a single module below.
    let report = run_fuzz_with(&cfg(40, false), &blind_checker);
    assert!(
        !report.clean(),
        "a checker that reports nothing must miss real faults"
    );
    assert!(report
        .divergences
        .iter()
        .all(|d| d.kind == DivergenceKind::Unsound));
    // Every mode × backend slot is implicated (the blind checker is
    // blind everywhere), and the stream records each conviction.
    let tagged = report
        .divergences
        .iter()
        .filter(|d| d.backend.is_some())
        .count();
    assert_eq!(tagged % 6, 0, "one divergence per mode x backend");
    assert!(report.stream.contains("!! unsound"));
}

#[test]
fn divergence_shrinks_to_minimal_deterministic_repro() {
    // Find the first fuzz module whose execution faults, then shrink
    // it against the blind checker.
    let report = run_fuzz_with(&cfg(40, true), &blind_checker);
    let d = report
        .divergences
        .first()
        .expect("a faulting module within 40 iterations");
    let shrunk = d.shrunk.as_deref().expect("shrinking was enabled");
    assert!(
        shrunk.len() < d.source.len(),
        "shrinking made progress:\n{shrunk}"
    );
    // The witness still diverges: it faults dynamically, and a blind
    // checker still reports nothing.
    let sh = shrink_source(
        &d.module,
        shrunk,
        100_000,
        &blind_checker,
        DivergenceKind::Unsound,
    );
    assert_eq!(sh.source, *shrunk, "shrunk output is a fixpoint");
    assert_eq!(sh.steps, 0, "no further edit preserves the divergence");
    // And the real checker flags the shrunk witness — the repro is a
    // genuine bug module, not an artifact of shrinking.
    let m = parse_module(&d.module, shrunk).expect("repro parses");
    let matrix = real_static_matrix(&m);
    assert!(
        matrix.0.iter().flatten().all(|r| !r.errors.is_empty()),
        "real checker flags the shrunk repro under every mode x backend:\n{shrunk}"
    );
    // Determinism: replaying the run shrinks to the same witness.
    let replay = run_fuzz_with(&cfg(40, true), &blind_checker);
    assert_eq!(replay.divergences[0].shrunk.as_deref(), Some(shrunk));
}

#[test]
fn shrinker_canonicalizes_and_is_idempotent_on_clean_modules() {
    // A module with no divergence comes back unchanged (modulo
    // pretty-printing) and costs nothing.
    let src = "lock mu;\nvoid f() { spin_lock(&mu); spin_unlock(&mu); }\n";
    let out = shrink_source(
        "m",
        src,
        100_000,
        &real_static_matrix,
        DivergenceKind::Unsound,
    );
    let canonical = pretty::print_module(&parse_module("m", src).unwrap());
    assert_eq!(out.source, canonical);
    assert_eq!(out.steps, 0);
}
