//! Integration tests for the latency-histogram layer: the distribution
//! a sweep reports must describe the *work*, never the *schedule*.
//!
//! Two determinism contracts are pinned here, one per failure mode:
//!
//! * **Real sweeps** time real work, so the nanosecond values differ run
//!   to run — but the *event multiset structure* (which histograms
//!   recorded, and how many samples each took) is a pure function of the
//!   corpus. Those counts must be identical for every `--jobs` ×
//!   `--intra-jobs` combination.
//! * **Equal multisets** must merge to byte-identical artifacts whatever
//!   thread layout recorded them: the same samples pushed through the
//!   real fork/attach flush discipline under 1, 2, or 8 workers render
//!   the exact same `hist` JSON block, byte for byte.
//!
//! Every test holds [`obs::test_lock`] across enable → work → drain —
//! the histogram registry is process-global.

use localias_alias::Backend;
use localias_bench::CachePolicy;
use localias_bench::{json, json_hists, measure_corpus_cached, measure_corpus_with_cache};
use localias_corpus::{generate, GeneratedModule, DEFAULT_SEED};
use localias_obs as obs;

/// Corpus prefix the sweeps run: enough modules for the work-stealing
/// loop to interleave on while staying fast in debug builds.
const PREFIX: usize = 40;

fn slice() -> Vec<GeneratedModule> {
    let corpus = generate(DEFAULT_SEED);
    assert!(corpus.len() >= PREFIX);
    corpus[..PREFIX].to_vec()
}

/// Sweeps `slice` with only histogram collection on (the default-run
/// configuration: no spans, no counters) and returns the drained
/// snapshots. Caller holds the test lock.
fn hist_sweep(slice: &[GeneratedModule], jobs: usize, intra: usize) -> Vec<obs::HistSnapshot> {
    obs::enable_hists();
    let _ = obs::drain();
    let _ = measure_corpus_cached(slice, jobs, intra, DEFAULT_SEED, Backend::Steensgaard, None);
    let trace = obs::drain();
    obs::disable_hists();
    trace.hists
}

/// The schedule-free shape of a drained histogram set: name and sample
/// count per histogram (the nanosecond fields are wall-clock readings
/// and legitimately vary).
fn shape(hists: &[obs::HistSnapshot]) -> Vec<(String, u64)> {
    hists.iter().map(|h| (h.name.clone(), h.count)).collect()
}

/// The pinned acceptance criterion, event-count half: every histogram
/// records exactly the same number of samples whatever `--jobs` and
/// `--intra-jobs` the sweep ran under.
#[test]
fn sweep_hist_counts_are_thread_invariant() {
    let slice = slice();
    let _l = obs::test_lock();

    let base = hist_sweep(&slice, 1, 1);
    let names: Vec<&str> = base.iter().map(|h| h.name.as_str()).collect();
    assert!(
        names.contains(&"analyze.module"),
        "per-module analysis went unrecorded: {names:?}"
    );
    assert!(
        names.contains(&"check.function"),
        "per-function checks went unrecorded: {names:?}"
    );
    assert!(
        names.contains(&"check.wave"),
        "check waves went unrecorded: {names:?}"
    );
    for h in &base {
        assert!(h.count > 0, "{} drained empty", h.name);
        assert_eq!(
            h.count,
            h.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            "{}: bucket counts must sum to the sample count",
            h.name
        );
    }

    let base_shape = shape(&base);
    for (jobs, intra) in [(2, 1), (8, 1), (1, 4), (2, 4), (8, 4)] {
        let got = shape(&hist_sweep(&slice, jobs, intra));
        assert_eq!(
            got, base_shape,
            "histogram shape depends on schedule at jobs={jobs} intra_jobs={intra}"
        );
    }
}

/// Records `values` into `check.function` under `workers` threads, each
/// flushing through the real [`obs::SpanContext`] attach-guard edge —
/// the same path sweep workers take — and returns the drained
/// snapshots. Caller holds the test lock.
fn layout_hists(values: &[u64], workers: usize) -> Vec<obs::HistSnapshot> {
    obs::enable_hists();
    let _ = obs::drain();
    let ctx = obs::fork();
    std::thread::scope(|s| {
        for w in 0..workers {
            let chunk: Vec<u64> = values.iter().copied().skip(w).step_by(workers).collect();
            let ctx = &ctx;
            s.spawn(move || {
                let _attached = ctx.attach();
                for v in chunk {
                    obs::record(obs::Hist::CheckFunction, v);
                }
            });
        }
    });
    let trace = obs::drain();
    obs::disable_hists();
    trace.hists
}

/// The pinned acceptance criterion, byte-identity half: the same sample
/// multiset recorded under any worker layout renders the exact same
/// bench-artifact `hist` block. This is what lets partitioned and
/// multi-threaded runs be compared byte-for-byte.
#[test]
fn equal_multisets_render_byte_identical_hist_blocks() {
    let values: Vec<u64> = (0..1_000u64)
        .map(|i| (i * 2654435761) % 5_000_000)
        .collect();
    let _l = obs::test_lock();

    let base = layout_hists(&values, 1);
    let base_json = json_hists(&base);
    json::parse(&base_json).expect("hist block is valid JSON");
    for workers in [2usize, 4, 8] {
        let hists = layout_hists(&values, workers);
        assert_eq!(hists, base, "{workers}-worker snapshots diverged");
        assert_eq!(
            json_hists(&hists),
            base_json,
            "{workers}-worker hist block is not byte-identical"
        );
    }
}

/// End to end through the artifact format: a known distribution renders
/// exact, hand-computable percentiles in the JSON the bench files embed.
#[test]
fn hist_block_reports_exact_percentiles() {
    // 100 fast samples (10 ns → bucket 4, bound 15), 10 slow (1000 ns →
    // bucket 10, bound 1023), one outlier (1 ms, clamped to max).
    let mut values = vec![10u64; 100];
    values.extend([1000u64; 10]);
    values.push(1_000_000);

    let _l = obs::test_lock();
    obs::enable_hists();
    let _ = obs::drain();
    for &v in &values {
        obs::record(obs::Hist::AnalyzeModule, v);
    }
    let trace = obs::drain();
    obs::disable_hists();

    let doc = json::parse(&json_hists(&trace.hists)).expect("hist block parses");
    let h = doc.get("analyze.module").expect("analyze.module present");
    let field = |name: &str| h.get(name).and_then(json::Value::as_u64).unwrap();
    assert_eq!(field("count"), 111);
    assert_eq!(field("sum_ns"), 100 * 10 + 10 * 1000 + 1_000_000);
    assert_eq!(field("min_ns"), 10);
    assert_eq!(field("max_ns"), 1_000_000);
    assert_eq!(field("p50_ns"), 15, "rank 56 lands in the 10 ns bucket");
    assert_eq!(field("p90_ns"), 15, "rank 100 still in the 10 ns bucket");
    assert_eq!(field("p95_ns"), 1023, "rank 106 lands in the 1 µs bucket");
    assert_eq!(field("p99_ns"), 1023, "rank 110 lands in the 1 µs bucket");
    // Histograms nothing recorded into still render, zeroed, so warm and
    // cold artifacts keep the same shape.
    let idle = doc.get("fuzz.execute").expect("registered but idle hist");
    assert_eq!(idle.get("count").and_then(json::Value::as_u64), Some(0));
}

/// The cache path is instrumented on both edges: a cold cached sweep
/// times shard persists, a warm one times shard loads.
#[test]
fn cached_sweeps_record_shard_load_and_persist_latencies() {
    let dir = std::env::temp_dir().join(format!("localias-hist-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = CachePolicy::dir(&dir);
    let slice = slice();

    let _l = obs::test_lock();
    obs::enable_hists();
    let _ = obs::drain();
    let _ = measure_corpus_with_cache(&slice, 2, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let cold = obs::drain();
    obs::disable_hists();
    let persist = cold
        .hist(obs::Hist::CacheShardPersist)
        .expect("cold run persisted shards");
    assert!(persist.count > 0);

    obs::enable_hists();
    let _ = obs::drain();
    let _ = measure_corpus_with_cache(&slice, 2, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let warm = obs::drain();
    obs::disable_hists();
    let load = warm
        .hist(obs::Hist::CacheShardLoad)
        .expect("warm run loaded shards");
    assert!(load.count > 0);

    let _ = std::fs::remove_dir_all(&dir);
}
