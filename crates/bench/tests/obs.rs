//! Determinism and closed-form tests for the observability layer.
//!
//! The obs contract is that traces describe the *work*, not the
//! *schedule*: counter totals and the span tree (paths and counts) must
//! be byte-identical whatever `--jobs`/`--intra-jobs` the pipeline ran
//! under, and on the synthesized mega-module the headline counters have
//! exact closed forms pinned here.
//!
//! Every test holds [`obs::test_lock`] across enable → work → drain —
//! the counters are process-global, so concurrently running tests that
//! enable collection would observe each other.

use localias_alias::Backend;
use localias_bench::{measure_corpus_cached, ModuleResult};
use localias_corpus::{generate, mega_module, DEFAULT_SEED};
use localias_obs as obs;

/// Corpus prefix the determinism sweep runs; enough modules for the
/// work-stealing loop to interleave on while staying fast in debug.
const PREFIX: usize = 40;

/// Sweeps `slice` under the given thread counts with collection on and
/// returns the drained trace. Caller holds the test lock.
fn traced_sweep(
    slice: &[localias_corpus::GeneratedModule],
    jobs: usize,
    intra: usize,
) -> obs::Trace {
    obs::enable_all();
    let _ = obs::drain();
    let _ = measure_corpus_cached(slice, jobs, intra, DEFAULT_SEED, Backend::Steensgaard, None);
    let trace = obs::drain();
    obs::disable_metrics();
    obs::disable_spans();
    trace
}

/// The pinned acceptance criterion: counter totals and the normalized
/// span tree are identical for every `jobs` × `intra_jobs` combination.
#[test]
fn trace_shape_is_thread_invariant() {
    let corpus = generate(DEFAULT_SEED);
    let slice = &corpus[..PREFIX.min(corpus.len())];

    let _l = obs::test_lock();
    let base = traced_sweep(slice, 1, 1);
    assert!(!base.is_empty(), "instrumented sweep recorded nothing");
    assert!(
        base.spans.iter().any(|s| s.path == "bench.sweep"),
        "sweep span missing: {:?}",
        base.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );
    // The sweep drives the full pipeline, so every stage's headline
    // counter must have left tracks.
    for c in [
        obs::Counter::ModulesAnalyzed,
        obs::Counter::AliasUnifications,
        obs::Counter::DeliverOps,
        obs::Counter::SolveRounds,
        obs::Counter::CqualFunctionsChecked,
        obs::Counter::CqualLockSites,
    ] {
        assert!(base.counter(c) > 0, "{} stayed zero", obs::counter_name(c));
    }
    for (jobs, intra) in [(2, 1), (8, 1), (1, 4), (8, 4)] {
        let t = traced_sweep(slice, jobs, intra);
        assert_eq!(
            t.normalized(),
            base.normalized(),
            "trace shape depends on schedule at jobs={jobs} intra_jobs={intra}"
        );
    }
}

/// The mega-module's construction makes the headline counters exact:
/// every function is checked once per mode, every array/scalar leaf
/// contributes one lock + one unlock site per mode, and only the array
/// leaves error (under no-confine only).
#[test]
fn mega_module_counters_match_closed_form() {
    const FUNS: usize = 90;
    // 90 funs → 9 tops, 27 mids, 54 leaves; leaf kinds cycle
    // array/scalar/compute → 18 of each.
    const N_ARRAY: u64 = 18;
    const N_SCALAR: u64 = 18;
    let m = mega_module(20030609, FUNS);

    let _l = obs::test_lock();
    obs::enable_all();
    let _ = obs::drain();
    let r = ModuleResult::measure(&m);
    let trace = obs::drain();
    obs::disable_metrics();
    obs::disable_spans();

    assert_eq!(
        (r.no_confine, r.confine, r.all_strong),
        (N_ARRAY as usize, 0, 0),
        "mega-module error triple"
    );
    // One module, two analysis pipelines (no-confine/all-strong share the
    // base analysis; confine runs its own).
    assert_eq!(trace.counter(obs::Counter::ModulesAnalyzed), 2);
    // Three mode checks, each over every function exactly once.
    assert_eq!(
        trace.counter(obs::Counter::CqualFunctionsChecked),
        3 * FUNS as u64
    );
    // Each array/scalar leaf has exactly one spin_lock + one spin_unlock.
    assert_eq!(
        trace.counter(obs::Counter::CqualLockSites),
        3 * 2 * (N_ARRAY + N_SCALAR)
    );
    // Only the array leaves error, and only under no-confine.
    assert_eq!(trace.counter(obs::Counter::CqualErrors), N_ARRAY);
    // The three-layer DAG schedules at least three waves per mode check,
    // and all three checks share one call graph.
    let waves = trace.counter(obs::Counter::CqualWaves);
    assert!(waves >= 9, "expected >= 3 waves x 3 modes, got {waves}");
    assert_eq!(waves % 3, 0, "modes share the schedule, got {waves}");
    // The rest of the pipeline left tracks too. (No CHECK-SAT counters
    // here: the mega-module carries no restrict annotations, so the
    // corpus sweep test covers those.)
    for c in [
        obs::Counter::AliasFreshLocs,
        obs::Counter::AliasFindOps,
        obs::Counter::EffectVars,
        obs::Counter::ConstraintEdges,
    ] {
        assert!(trace.counter(c) > 0, "{} stayed zero", obs::counter_name(c));
    }
}

/// The targeted CHECK-SAT search tallies its traversal in thread-local
/// accumulators and flushes once per query — the per-query counters must
/// reflect the search even when the answer is found early.
#[test]
fn checksat_queries_count_nodes_and_edges() {
    use localias_effects::{build, reaches, ConstraintSystem, Effect, EffectKind, KindMask};

    let mut cs = ConstraintSystem::new();
    let mut locs = localias_alias::LocTable::new();
    let l = locs.fresh("l".to_string(), localias_alias::Ty::Int);
    let vars: Vec<_> = (0..8).map(|i| cs.fresh_var(format!("v{i}"))).collect();
    cs.include(Effect::atom(EffectKind::Read, l), vars[0]);
    for w in vars.windows(2) {
        cs.include(Effect::var(w[0]), w[1]);
    }
    let graph = build(&mut cs);

    let _l = obs::test_lock();
    obs::enable_all();
    let _ = obs::drain();
    let hit = reaches(&graph, &cs, &mut locs, l, KindMask::ACCESS, vars[7]);
    let miss = reaches(&graph, &cs, &mut locs, l, KindMask::WRITE, vars[7]);
    let trace = obs::drain();
    obs::disable_metrics();
    obs::disable_spans();

    assert!(hit, "the read atom reaches the chain's end");
    assert!(!miss, "the chain carries no write atom");
    assert_eq!(trace.counter(obs::Counter::CheckSatQueries), 2);
    assert!(trace.counter(obs::Counter::CheckSatNodes) > 0);
    assert!(trace.counter(obs::Counter::CheckSatEdges) > 0);
}

/// The same work traced twice yields identical counter totals — the
/// counters are functions of the input, not of wall time or allocation.
#[test]
fn repeated_runs_count_identically() {
    let m = mega_module(7, 30);
    let _l = obs::test_lock();
    let mut shapes = Vec::new();
    for _ in 0..2 {
        obs::enable_all();
        let _ = obs::drain();
        let _ = ModuleResult::measure(&m);
        let t = obs::drain();
        obs::disable_metrics();
        obs::disable_spans();
        shapes.push(t.normalized());
    }
    assert_eq!(shapes[0], shapes[1]);
}

/// End to end through the file format: a real trace renders to JSON
/// lines that the strict validator accepts and reads back verbatim.
#[test]
fn real_trace_round_trips_through_the_validator() {
    let corpus = generate(DEFAULT_SEED);
    let slice = &corpus[..8.min(corpus.len())];

    let _l = obs::test_lock();
    let trace = traced_sweep(slice, 2, 1);
    let text = trace.to_jsonl();
    let summary = obs::validate_jsonl(&text).expect("generated trace validates");
    assert_eq!(summary.spans, trace.spans.len());
    for (name, value) in trace.counters.iter_nonzero() {
        let read = summary
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v);
        assert_eq!(read, Some(value), "counter {name} lost in serialization");
    }
}
