//! Corpus-wide pin of the pretty printer's canonical-form guarantee:
//! `print ∘ parse` must be a fixpoint on every module of the 589-module
//! experiment corpus. The incremental analysis cache fingerprints modules
//! by their pretty-printed source, so any instability here would silently
//! split cache keys (spurious misses) — or worse, conflate them.

use localias_ast::{parse_module, pretty};
use localias_corpus::{generate, DEFAULT_SEED};

#[test]
fn pretty_is_a_fixpoint_over_the_whole_corpus() {
    let corpus = generate(DEFAULT_SEED);
    assert_eq!(corpus.len(), 589);
    for m in &corpus {
        let printed = pretty::print_module(&m.parse());
        let reparsed = parse_module(&m.name, &printed)
            .unwrap_or_else(|e| panic!("{}: canonical form must re-parse: {e}", m.name));
        let printed2 = pretty::print_module(&reparsed);
        assert_eq!(
            printed, printed2,
            "{}: print∘parse is not a fixpoint",
            m.name
        );
    }
}

/// Determinism across independent prints (no hidden iteration-order or
/// interning dependence): two parses of the same source print the same
/// bytes.
#[test]
fn printing_is_deterministic() {
    let corpus = generate(DEFAULT_SEED);
    for m in corpus.iter().take(50) {
        let a = pretty::print_module(&m.parse());
        let b = pretty::print_module(&m.parse());
        assert_eq!(a, b, "{}", m.name);
    }
}
