//! Correctness regression tests for the incremental analysis cache: warm
//! results must be byte-identical to cold ones, invalidation must be
//! exact (one changed module = one miss), broken shards must quarantine
//! individually and degrade their modules to a cold run, concurrent
//! writers sharing one store must lose no entries, and warm sweeps must
//! stay deterministic across thread counts and seed changes.

use localias_alias::Backend;
use localias_bench::cache::shard_file_name;
use localias_bench::{
    measure_corpus_cached, measure_corpus_timed, measure_corpus_with_cache, AnalysisCache,
    CachePolicy, ModuleResult, ANALYSIS_VERSION,
};
use localias_corpus::{generate, GeneratedModule, DEFAULT_SEED};
use std::path::{Path, PathBuf};

/// Corpus prefix the tests sweep: big enough to cover every generator
/// archetype (and to populate most of the 16 shards), small enough for
/// debug builds.
const PREFIX: usize = 40;

/// A fresh, empty cache directory unique to this test.
fn cache_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("localias-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn policy(dir: &Path) -> CachePolicy {
    CachePolicy::dir(dir)
}

fn slice() -> Vec<GeneratedModule> {
    let corpus = generate(DEFAULT_SEED);
    assert!(corpus.len() >= PREFIX);
    corpus[..PREFIX].to_vec()
}

/// Renders results the way the report-diffing contract sees them: every
/// field of every module, in order.
fn render(results: &[ModuleResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "{} {} {} {}\n",
                r.name, r.no_confine, r.confine, r.all_strong
            )
        })
        .collect()
}

/// Every `shard-NN.jsonl` currently present under `dir`, sorted.
fn shard_paths(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap_or_default().to_string_lossy();
            name.starts_with("shard-") && name.ends_with(".jsonl")
        })
        .collect();
    out.sort();
    out
}

/// Number of entry lines (excluding the header) in one shard file.
fn entry_count(path: &Path) -> usize {
    std::fs::read_to_string(path).unwrap().lines().count() - 1
}

#[test]
fn cold_then_warm_is_byte_identical_and_fully_hits() {
    let dir = cache_dir("cold-warm");
    let policy = policy(&dir);
    let slice = slice();

    let (cold, cold_bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = cold_bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (0, PREFIX));
    assert_eq!(stats.shard_misses.iter().sum::<usize>(), PREFIX);
    assert_eq!((stats.quarantined, stats.lock_skips), (0, 0));
    let shards = shard_paths(&dir);
    assert!(
        shards.len() > 1,
        "entries persisted across multiple shard files, got {shards:?}"
    );
    assert!(
        !dir.join(localias_bench::cache::STORE_FILE).exists(),
        "no legacy monolithic store is written"
    );
    assert_eq!(
        shards.iter().map(|p| entry_count(p)).sum::<usize>(),
        PREFIX,
        "every module's entry lands in exactly one shard"
    );

    let (warm, warm_bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = warm_bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
    assert_eq!(stats.shard_hits.iter().sum::<usize>(), PREFIX);
    assert_eq!(
        render(&cold),
        render(&warm),
        "warm report must be byte-identical"
    );

    // And both must equal an uncached run.
    let (uncached, _) = measure_corpus_timed(&slice, 1, DEFAULT_SEED);
    assert_eq!(render(&uncached), render(&warm));
}

#[test]
fn perturbing_one_module_invalidates_exactly_one() {
    let dir = cache_dir("perturb");
    let policy = policy(&dir);
    let mut slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);

    // A content change (new global) must invalidate exactly its module.
    slice[7].source.push_str("\nint cache_perturbation_g;\n");
    let (warm, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(
        (stats.hits, stats.misses),
        (PREFIX - 1, 1),
        "exactly the perturbed module must miss"
    );
    assert_eq!(stats.shard_misses.iter().sum::<usize>(), 1);

    // The mixed warm/miss report must equal a cold, uncached run of the
    // same perturbed corpus.
    let (cold, _) = measure_corpus_timed(&slice, 1, DEFAULT_SEED);
    assert_eq!(render(&cold), render(&warm));
}

/// Switching the alias backend against a warm cache must miss on every
/// module, in both directions: the two backends key disjoint fingerprint
/// domains, so a Steensgaard-warmed store can never serve an Andersen
/// sweep a stale (coarser) result, or vice versa.
#[test]
fn switching_alias_backend_never_hits_warm_cache() {
    let dir = cache_dir("backend-domain");
    let policy = policy(&dir);
    let slice = slice();

    // Warm the store under the default (Steensgaard) backend.
    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);

    // Same modules under Andersen: all misses.
    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Andersen, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(
        (stats.hits, stats.misses),
        (0, PREFIX),
        "andersen sweep must not hit steensgaard-keyed entries"
    );

    // And the reverse direction, against the now two-domain store: both
    // backends hit only their own entries.
    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Andersen, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
}

#[test]
fn comment_only_change_hits_via_canonical_fingerprint() {
    let dir = cache_dir("comment");
    let policy = policy(&dir);
    let mut slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);

    // Comments normalize away in the canonical form: raw fingerprint
    // misses, canonical fingerprint hits, no re-analysis.
    slice[3].source.push_str("\n// a trailing comment\n");
    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));

    // The new raw fingerprint was aliased: the next sweep takes the
    // no-parse fast path for every module again.
    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
}

/// Corrupting every shard degrades the whole sweep to a cold run — and
/// each broken shard is quarantined to `*.bad`, never re-parsed.
#[test]
fn corrupt_shards_fall_back_to_cold_run() {
    let dir = cache_dir("corrupt");
    let policy = policy(&dir);
    let slice = slice();

    let (cold, _) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let shards = shard_paths(&dir);
    for p in &shards {
        std::fs::write(p, b"garbage\x00not a store\n").unwrap();
    }

    let (recovered, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(
        (stats.hits, stats.misses),
        (0, PREFIX),
        "corrupt shards must be discarded, not half-used"
    );
    assert_eq!(stats.quarantined, shards.len(), "one quarantine per shard");
    for p in &shards {
        let mut bad = p.as_os_str().to_os_string();
        bad.push(".bad");
        assert!(
            PathBuf::from(bad).exists(),
            "{} quarantined for inspection",
            p.display()
        );
    }
    assert_eq!(render(&cold), render(&recovered));

    // The rewrite healed the store.
    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
    assert_eq!(stats.quarantined, 0);
}

/// Truncating ONE shard mid-entry (the way an interrupted write would)
/// quarantines only that shard: its modules re-analyze, every other
/// shard keeps serving hits.
#[test]
fn truncated_shard_quarantines_only_itself() {
    let dir = cache_dir("truncated");
    let policy = policy(&dir);
    let slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let shards = shard_paths(&dir);
    assert!(shards.len() > 1, "need multiple shards for this test");
    let victim = &shards[0];
    let lost = entry_count(victim);
    let full = std::fs::read(victim).unwrap();
    // Cut mid-entry (also severing the trailing newline).
    std::fs::write(victim, &full[..full.len() - 3]).unwrap();

    let (results, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(
        (stats.hits, stats.misses),
        (PREFIX - lost, lost),
        "exactly the truncated shard's modules re-analyze"
    );
    assert_eq!(stats.quarantined, 1, "only the broken shard quarantines");
    let (cold, _) = measure_corpus_timed(&slice, 1, DEFAULT_SEED);
    assert_eq!(render(&cold), render(&results));

    // The re-analysis healed the quarantined shard.
    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
}

#[test]
fn version_mismatched_shards_are_discarded() {
    let dir = cache_dir("version");
    let policy = policy(&dir);
    let slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    for p in shard_paths(&dir) {
        let text = std::fs::read_to_string(&p).unwrap();
        let bumped = text.replacen(
            &format!("\"analysis_version\":{ANALYSIS_VERSION}"),
            &format!("\"analysis_version\":{}", ANALYSIS_VERSION - 1),
            1,
        );
        assert_ne!(text, bumped);
        std::fs::write(&p, bumped).unwrap();
    }

    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (0, PREFIX));
    assert!(stats.quarantined > 0);
}

/// A store written by the PR-2 binary (schema `localias-cache/v1`,
/// `analysis_version: 1`, named-field entry lines) must be discarded
/// whole: the checker pipeline changed in v2, so every v1 entry is
/// potentially stale and none may be served. Under the sharded layout it
/// is quarantined as a corrupt legacy store.
#[test]
fn stale_v1_store_is_discarded_whole() {
    let dir = cache_dir("v1-store");
    let policy = policy(&dir);
    let slice = slice();

    // Reconstruct the exact v1 format from before the bump, entry lines
    // included — a plausible leftover from a PR-2 sweep of this corpus.
    std::fs::create_dir_all(&dir).unwrap();
    let mut store = String::from("{\"schema\":\"localias-cache/v1\",\"analysis_version\":1}\n");
    for (i, _) in slice.iter().enumerate() {
        store.push_str(&format!(
            "{{\"fp\":\"{i:032x}\",\"raw\":\"{:032x}\",\"nc\":7,\"cf\":7,\"as\":7,\
             \"parse_ns\":1,\"check_ns\":1,\"confine_ns\":1}}\n",
            i + 1000
        ));
    }
    let legacy = dir.join(localias_bench::cache::STORE_FILE);
    std::fs::write(&legacy, store).unwrap();

    let (results, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(
        (stats.hits, stats.misses),
        (0, PREFIX),
        "every stale v1 entry must be discarded, none served"
    );
    assert!(!legacy.exists(), "stale legacy store quarantined away");
    let (cold, _) = measure_corpus_timed(&slice, 1, DEFAULT_SEED);
    assert_eq!(render(&cold), render(&results));

    // The sweep replaced the stale store with a current sharded one.
    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
}

/// `--cache-shards 1` degenerates to a single shard file and still
/// round-trips; a later load under the default shard count reads it.
#[test]
fn single_shard_store_round_trips_across_shard_counts() {
    let dir = cache_dir("one-shard");
    let slice = slice();
    let one = CachePolicy::Dir {
        dir: dir.clone(),
        shards: 1,
    };

    let (_, bench) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &one);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(stats.shards, 1);
    assert_eq!(stats.shard_misses, vec![PREFIX]);
    assert_eq!(shard_paths(&dir), vec![dir.join(shard_file_name(0))]);

    // Default shard count loads the single-shard layout without loss.
    let (_, bench) = measure_corpus_with_cache(
        &slice,
        1,
        1,
        DEFAULT_SEED,
        Backend::Steensgaard,
        &policy(&dir),
    );
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
}

#[test]
fn warm_sweep_is_deterministic_across_thread_counts() {
    let dir = cache_dir("jobs");
    let policy = policy(&dir);
    let slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);

    let (warm1, b1) =
        measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    let (warm8, b8) =
        measure_corpus_with_cache(&slice, 8, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);
    assert_eq!(render(&warm1), render(&warm8));
    assert_eq!(b1.cache.unwrap().hits, PREFIX);
    assert_eq!(b8.cache.unwrap().hits, PREFIX);

    // Mixed hit/miss sweeps must also be jobs-independent.
    let mut perturbed = slice.clone();
    for m in perturbed.iter_mut().take(5) {
        m.source.push_str("\nint jobs_perturbation_g;\n");
    }
    let (mixed1, _) = measure_corpus_cached(
        &perturbed,
        1,
        1,
        DEFAULT_SEED,
        Backend::Steensgaard,
        Some(&mut AnalysisCache::load(&dir)),
    );
    let (mixed8, _) = measure_corpus_cached(
        &perturbed,
        8,
        1,
        DEFAULT_SEED,
        Backend::Steensgaard,
        Some(&mut AnalysisCache::load(&dir)),
    );
    assert_eq!(render(&mixed1), render(&mixed8));
}

/// The ISSUE's cold → warm → perturbed-seed trajectory: re-running with a
/// different seed against a warm store must report exactly what a cold,
/// uncached run of that seed's corpus reports.
#[test]
fn perturbed_seed_reports_match_a_cold_run() {
    let dir = cache_dir("seed");
    let policy = policy(&dir);

    let slice_a = slice();
    let _ = measure_corpus_with_cache(&slice_a, 1, 1, DEFAULT_SEED, Backend::Steensgaard, &policy);

    let corpus_b = generate(DEFAULT_SEED + 1);
    let slice_b = corpus_b[..PREFIX].to_vec();
    let (via_cache, _) = measure_corpus_with_cache(
        &slice_b,
        1,
        1,
        DEFAULT_SEED + 1,
        Backend::Steensgaard,
        &policy,
    );
    let (cold, _) = measure_corpus_timed(&slice_b, 1, DEFAULT_SEED + 1);
    assert_eq!(render(&cold), render(&via_cache));
}

// ---------------------------------------------------------------------
// Multi-process concurrency: the PR-2/PR-3 monolithic store lost one
// writer's entries whenever two processes raced the final rename. The
// sharded merge-on-write store must keep the exact union.

/// Child-process entry point, re-executed from the test binary itself
/// (guarded by an env var, so it is an instant no-op as a normal test).
/// Loads the shared cache while it is still empty, rendezvouses with its
/// sibling, then sweeps its half of the corpus and persists — the exact
/// interleaving (load before the sibling's persist) that clobbered the
/// monolithic store.
#[test]
fn concurrent_child() {
    let Ok(spec) = std::env::var("LOCALIAS_CACHE_TEST_CHILD") else {
        return;
    };
    let parts: Vec<&str> = spec.split('|').collect();
    let [dir, lo, hi, peer] = parts[..] else {
        panic!("bad child spec {spec:?}");
    };
    let dir = PathBuf::from(dir);
    let (lo, hi): (usize, usize) = (lo.parse().unwrap(), hi.parse().unwrap());

    let corpus = generate(DEFAULT_SEED);
    let slice = corpus[lo..hi].to_vec();
    let mut cache = AnalysisCache::load(&dir);
    assert!(cache.is_empty(), "child must load the pre-sweep store");

    // Rendezvous: both children hold an empty in-memory store before
    // either persists, so a lost-update bug cannot hide behind timing.
    std::fs::write(dir.join(format!("ready.{lo}")), "").unwrap();
    let peer = dir.join(format!("ready.{peer}"));
    let t0 = std::time::Instant::now();
    while !peer.exists() {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(60),
            "sibling never arrived"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let (_, bench) = measure_corpus_cached(
        &slice,
        1,
        1,
        DEFAULT_SEED,
        Backend::Steensgaard,
        Some(&mut cache),
    );
    assert_eq!(bench.cache.unwrap().misses, hi - lo);
    cache.persist().expect("child persist");
}

/// Two real processes sweep disjoint corpus halves into one cache
/// directory concurrently; the final store must hold the exact union
/// (a third, warm sweep over the full slice hits on every module).
#[test]
fn concurrent_disjoint_sweeps_lose_no_entries() {
    let dir = cache_dir("concurrent");
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();
    let mid = PREFIX / 2;

    let spawn = |lo: usize, hi: usize, peer: usize| {
        std::process::Command::new(&exe)
            .args(["--exact", "concurrent_child", "--nocapture"])
            .env(
                "LOCALIAS_CACHE_TEST_CHILD",
                format!("{}|{lo}|{hi}|{peer}", dir.display()),
            )
            .spawn()
            .expect("child spawns")
    };
    let mut a = spawn(0, mid, mid);
    let mut b = spawn(mid, PREFIX, 0);
    assert!(a.wait().expect("child a").success(), "child a failed");
    assert!(b.wait().expect("child b").success(), "child b failed");

    // The union survived: a warm sweep over the full slice serves every
    // module from the store and re-analyzes nothing.
    let slice = slice();
    let (warm, bench) = measure_corpus_with_cache(
        &slice,
        1,
        1,
        DEFAULT_SEED,
        Backend::Steensgaard,
        &policy(&dir),
    );
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(
        (stats.hits, stats.misses),
        (PREFIX, 0),
        "both children's entries must survive concurrent persists"
    );
    assert_eq!(stats.quarantined, 0, "no shard was harmed in the race");
    let (cold, _) = measure_corpus_timed(&slice, 1, DEFAULT_SEED);
    assert_eq!(render(&cold), render(&warm), "union serves exact results");
}
