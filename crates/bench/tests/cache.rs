//! Correctness regression tests for the incremental analysis cache: warm
//! results must be byte-identical to cold ones, invalidation must be
//! exact (one changed module = one miss), broken stores must degrade to
//! cold runs, and warm sweeps must stay deterministic across thread
//! counts and seed changes.

use localias_bench::{
    measure_corpus_cached, measure_corpus_timed, measure_corpus_with_cache, AnalysisCache,
    CachePolicy, ModuleResult,
};
use localias_corpus::{generate, GeneratedModule, DEFAULT_SEED};
use std::path::{Path, PathBuf};

/// Corpus prefix the tests sweep: big enough to cover every generator
/// archetype, small enough for debug builds.
const PREFIX: usize = 40;

/// A fresh, empty cache directory unique to this test.
fn cache_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("localias-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn slice() -> Vec<GeneratedModule> {
    let corpus = generate(DEFAULT_SEED);
    assert!(corpus.len() >= PREFIX);
    corpus[..PREFIX].to_vec()
}

/// Renders results the way the report-diffing contract sees them: every
/// field of every module, in order.
fn render(results: &[ModuleResult]) -> String {
    results
        .iter()
        .map(|r| {
            format!(
                "{} {} {} {}\n",
                r.name, r.no_confine, r.confine, r.all_strong
            )
        })
        .collect()
}

fn store_path(dir: &Path) -> PathBuf {
    dir.join(localias_bench::cache::STORE_FILE)
}

#[test]
fn cold_then_warm_is_byte_identical_and_fully_hits() {
    let dir = cache_dir("cold-warm");
    let policy = CachePolicy::Dir(dir.clone());
    let slice = slice();

    let (cold, cold_bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = cold_bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (0, PREFIX));
    assert!(store_path(&dir).is_file(), "store persisted");

    let (warm, warm_bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = warm_bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
    assert_eq!(
        render(&cold),
        render(&warm),
        "warm report must be byte-identical"
    );

    // And both must equal an uncached run.
    let (uncached, _) = measure_corpus_timed(&slice, 1, DEFAULT_SEED);
    assert_eq!(render(&uncached), render(&warm));
}

#[test]
fn perturbing_one_module_invalidates_exactly_one() {
    let dir = cache_dir("perturb");
    let policy = CachePolicy::Dir(dir.clone());
    let mut slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);

    // A content change (new global) must invalidate exactly its module.
    slice[7].source.push_str("\nint cache_perturbation_g;\n");
    let (warm, bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(
        (stats.hits, stats.misses),
        (PREFIX - 1, 1),
        "exactly the perturbed module must miss"
    );

    // The mixed warm/miss report must equal a cold, uncached run of the
    // same perturbed corpus.
    let (cold, _) = measure_corpus_timed(&slice, 1, DEFAULT_SEED);
    assert_eq!(render(&cold), render(&warm));
}

#[test]
fn comment_only_change_hits_via_canonical_fingerprint() {
    let dir = cache_dir("comment");
    let policy = CachePolicy::Dir(dir.clone());
    let mut slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);

    // Comments normalize away in the canonical form: raw fingerprint
    // misses, canonical fingerprint hits, no re-analysis.
    slice[3].source.push_str("\n// a trailing comment\n");
    let (_, bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));

    // The new raw fingerprint was aliased: the next sweep takes the
    // no-parse fast path for every module again.
    let (_, bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
}

#[test]
fn corrupt_store_falls_back_to_cold_run() {
    let dir = cache_dir("corrupt");
    let policy = CachePolicy::Dir(dir.clone());
    let slice = slice();

    let (cold, _) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    std::fs::write(store_path(&dir), b"garbage\x00not a store\n").unwrap();

    let (recovered, bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(
        (stats.hits, stats.misses),
        (0, PREFIX),
        "corrupt store must be discarded, not half-used"
    );
    assert_eq!(render(&cold), render(&recovered));

    // The rewrite healed the store.
    let (_, bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
}

#[test]
fn truncated_store_falls_back_to_cold_run() {
    let dir = cache_dir("truncated");
    let policy = CachePolicy::Dir(dir.clone());
    let slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let full = std::fs::read(store_path(&dir)).unwrap();
    // Cut mid-entry (also severing the trailing newline) the way an
    // interrupted write would.
    std::fs::write(store_path(&dir), &full[..full.len() - 3]).unwrap();

    let (_, bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (0, PREFIX));
}

#[test]
fn version_mismatched_store_is_discarded() {
    let dir = cache_dir("version");
    let policy = CachePolicy::Dir(dir.clone());
    let slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let text = std::fs::read_to_string(store_path(&dir)).unwrap();
    let bumped = text.replacen(
        &format!("\"analysis_version\":{}", localias_bench::ANALYSIS_VERSION),
        &format!(
            "\"analysis_version\":{}",
            localias_bench::ANALYSIS_VERSION + 1
        ),
        1,
    );
    assert_ne!(text, bumped);
    std::fs::write(store_path(&dir), bumped).unwrap();

    let (_, bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (0, PREFIX));
}

/// A store written by the PR-2 binary (schema `localias-cache/v1`,
/// `analysis_version: 1`, named-field entry lines) must be discarded
/// whole: the checker pipeline changed in v2, so every v1 entry is
/// potentially stale and none may be served.
#[test]
fn stale_v1_store_is_discarded_whole() {
    let dir = cache_dir("v1-store");
    let policy = CachePolicy::Dir(dir.clone());
    let slice = slice();

    // Reconstruct the exact v1 format from before the bump, entry lines
    // included — a plausible leftover from a PR-2 sweep of this corpus.
    std::fs::create_dir_all(&dir).unwrap();
    let mut store = String::from("{\"schema\":\"localias-cache/v1\",\"analysis_version\":1}\n");
    for (i, _) in slice.iter().enumerate() {
        store.push_str(&format!(
            "{{\"fp\":\"{i:032x}\",\"raw\":\"{:032x}\",\"nc\":7,\"cf\":7,\"as\":7,\
             \"parse_ns\":1,\"check_ns\":1,\"confine_ns\":1}}\n",
            i + 1000
        ));
    }
    std::fs::write(store_path(&dir), store).unwrap();

    let (results, bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!(
        (stats.hits, stats.misses),
        (0, PREFIX),
        "every stale v1 entry must be discarded, none served"
    );
    let (cold, _) = measure_corpus_timed(&slice, 1, DEFAULT_SEED);
    assert_eq!(render(&cold), render(&results));

    // The sweep replaced the stale store with a current one.
    let (_, bench) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let stats = bench.cache.expect("cache stats present");
    assert_eq!((stats.hits, stats.misses), (PREFIX, 0));
}

#[test]
fn warm_sweep_is_deterministic_across_thread_counts() {
    let dir = cache_dir("jobs");
    let policy = CachePolicy::Dir(dir.clone());
    let slice = slice();

    let _ = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);

    let (warm1, b1) = measure_corpus_with_cache(&slice, 1, 1, DEFAULT_SEED, &policy);
    let (warm8, b8) = measure_corpus_with_cache(&slice, 8, 1, DEFAULT_SEED, &policy);
    assert_eq!(render(&warm1), render(&warm8));
    assert_eq!(b1.cache.unwrap().hits, PREFIX);
    assert_eq!(b8.cache.unwrap().hits, PREFIX);

    // Mixed hit/miss sweeps must also be jobs-independent.
    let mut perturbed = slice.clone();
    for m in perturbed.iter_mut().take(5) {
        m.source.push_str("\nint jobs_perturbation_g;\n");
    }
    let (mixed1, _) = measure_corpus_cached(
        &perturbed,
        1,
        1,
        DEFAULT_SEED,
        Some(&mut AnalysisCache::load(&dir)),
    );
    let (mixed8, _) = measure_corpus_cached(
        &perturbed,
        8,
        1,
        DEFAULT_SEED,
        Some(&mut AnalysisCache::load(&dir)),
    );
    assert_eq!(render(&mixed1), render(&mixed8));
}

/// The ISSUE's cold → warm → perturbed-seed trajectory: re-running with a
/// different seed against a warm store must report exactly what a cold,
/// uncached run of that seed's corpus reports.
#[test]
fn perturbed_seed_reports_match_a_cold_run() {
    let dir = cache_dir("seed");
    let policy = CachePolicy::Dir(dir.clone());

    let slice_a = slice();
    let _ = measure_corpus_with_cache(&slice_a, 1, 1, DEFAULT_SEED, &policy);

    let corpus_b = generate(DEFAULT_SEED + 1);
    let slice_b = corpus_b[..PREFIX].to_vec();
    let (via_cache, _) = measure_corpus_with_cache(&slice_b, 1, 1, DEFAULT_SEED + 1, &policy);
    let (cold, _) = measure_corpus_timed(&slice_b, 1, DEFAULT_SEED + 1);
    assert_eq!(render(&cold), render(&via_cache));
}
