//! Regression tests for the shared-front-end experiment pipeline: the
//! analysis-reuse path must report exactly what three independent runs of
//! `check_locks` report, and the parallel runner must be deterministic.

use localias_bench::{measure_corpus, ModuleResult};
use localias_corpus::{generate, DEFAULT_SEED};
use localias_cqual::{check_locks, Mode};

/// How many corpus modules the equivalence test walks. Enough to cover
/// every generator archetype (clean, spurious-weak, real-bug, confine,
/// and the Figure 6/7 replicas all appear well inside this prefix).
const PREFIX: usize = 25;

/// The shared-analysis fast path must be observationally identical to
/// three independent `check_locks` pipelines — not just the same error
/// *counts*, but byte-identical rendered reports, error for error.
#[test]
fn shared_analysis_matches_independent_pipelines() {
    let corpus = generate(DEFAULT_SEED);
    assert!(corpus.len() >= PREFIX);

    for m in &corpus[..PREFIX] {
        let parsed = m.parse();
        let shared = ModuleResult::measure(m);

        for (mode, got) in [
            (Mode::NoConfine, shared.no_confine),
            (Mode::Confine, shared.confine),
            (Mode::AllStrong, shared.all_strong),
        ] {
            let independent = check_locks(&parsed, mode);
            assert_eq!(
                got,
                independent.error_count(),
                "module {} mode {:?}: shared pipeline disagrees with check_locks",
                m.name,
                mode
            );
        }
    }
}

/// The rendered error text must also match, so diagnostics (not just
/// counts) are unaffected by analysis sharing. `ModuleResult` keeps only
/// counts, so this re-runs the shared path at the report level.
#[test]
fn shared_analysis_reports_are_byte_identical() {
    use localias_core::SharedAnalysis;
    use localias_cqual::check_locks_shared;

    let corpus = generate(DEFAULT_SEED);
    for m in &corpus[..PREFIX] {
        let parsed = m.parse();
        let mut shared = SharedAnalysis::new(&parsed);
        for mode in [Mode::NoConfine, Mode::AllStrong, Mode::Confine] {
            let a = check_locks_shared(&mut shared, mode);
            let b = check_locks(&parsed, mode);
            let render = |r: &localias_cqual::LockReport| {
                let mut s = format!("{r}\n");
                for e in &r.errors {
                    s.push_str(&format!("{e}\n"));
                }
                s
            };
            assert_eq!(
                render(&a),
                render(&b),
                "module {} mode {:?}: rendered reports differ",
                m.name,
                mode
            );
        }
    }
}

/// The work-stealing runner must produce the same results in the same
/// order regardless of thread count — the experiment output is part of
/// the paper-reproduction contract and may not depend on scheduling.
#[test]
fn parallel_runner_is_deterministic() {
    let corpus = generate(DEFAULT_SEED);
    // A slice keeps this fast in debug builds while still giving the
    // stealing loop enough items to interleave on.
    let slice = &corpus[..60.min(corpus.len())];

    let seq = measure_corpus(slice, 1);
    let par = measure_corpus(slice, 8);

    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.name, b.name, "module order must not depend on jobs");
        assert_eq!(
            (a.no_confine, a.confine, a.all_strong),
            (b.no_confine, b.confine, b.all_strong),
            "module {}: results differ between jobs=1 and jobs=8",
            a.name
        );
    }
}
