//! Regression tests for checker/interpreter divergences surfaced by
//! `localias fuzz` (the differential soundness fuzzer in
//! `localias-bench`). Each test carries the shrunk counterexample the
//! fuzzer produced and pins the post-fix static verdict.

use localias_ast::parse_module;
use localias_cqual::{check_locks, LockState, Mode, MODES};

/// The recursion-havoc soundness hole (fixed in `store.rs`): a call
/// into a recursive cycle havocs the caller's store, but havoc used to
/// Top only the locations *already present* — a lock the cycle
/// acquires without the caller ever mentioning it stayed implicitly
/// `unlocked`, so the cycle's effects silently vanished at every call
/// site and all three modes blessed a module the interpreter faults on
/// (`b(1)` acquires `mu` twice).
///
/// Shrunk witness from the fuzzer's `recursive_relock` idiom. Post-fix,
/// `a`'s re-acquire after the cyclic call to `b` sees ⊤ and every mode
/// reports exactly that site.
#[test]
fn recursive_cycle_havoc_clobbers_unmentioned_locks() {
    let m = parse_module(
        "rec",
        r#"
lock mu;
void a(int n) {
    if (n) { b(n - 1); }
    spin_lock(&mu);
    spin_unlock(&mu);
}
void b(int n) {
    a(n);
    spin_lock(&mu);
}
"#,
    )
    .unwrap();
    for mode in MODES {
        let r = check_locks(&m, mode);
        assert_eq!(
            r.error_count(),
            1,
            "{mode:?}: the havocked re-acquire must be unverifiable"
        );
        let e = &r.errors[0];
        assert_eq!(e.fun, "a", "{mode:?}: attributed to the post-havoc site");
        assert_eq!(
            e.found,
            LockState::Top,
            "{mode:?}: havoc means ⊤, not unlocked"
        );
    }
}

/// The same hole, one level out: the havoc must propagate through the
/// *summary* of a function that calls into a cycle, or callers outside
/// the clique still see a clean exit state. `outside` never mentions
/// the cycle, yet its unlock after calling `a` cannot be verified.
#[test]
fn havoc_propagates_through_summaries_to_outside_callers() {
    let m = parse_module(
        "rec2",
        r#"
lock mu;
void a(int n) {
    if (n) { b(n - 1); }
}
void b(int n) {
    a(n);
    spin_lock(&mu);
    spin_unlock(&mu);
}
void outside(int n) {
    spin_lock(&mu);
    a(n);
    spin_unlock(&mu);
}
"#,
    )
    .unwrap();
    for mode in MODES {
        let r = check_locks(&m, mode);
        assert!(
            r.errors
                .iter()
                .any(|e| e.fun == "outside" && e.found == LockState::Top),
            "{mode:?}: a's havocked summary must clobber outside's held lock, got {:?}",
            r.errors
        );
    }
}

/// Control: recursion whose cycle is lock-balanced on every path still
/// havocs (the analysis cannot prove balance across the cycle), which
/// is conservative but sound — and the non-recursive sibling function
/// is unaffected.
#[test]
fn havoc_is_scoped_to_cycle_callers() {
    let m = parse_module(
        "rec3",
        r#"
lock mu;
lock other;
void spin(int n) {
    if (n) { spin(n - 1); }
}
void clean() {
    spin_lock(&other);
    spin_unlock(&other);
}
"#,
    )
    .unwrap();
    for mode in MODES {
        let r = check_locks(&m, mode);
        assert!(
            r.errors.iter().all(|e| e.fun != "clean"),
            "{mode:?}: functions that never reach the cycle keep their precision"
        );
    }
}

/// Check the checker against the shrunken module's ground truth end to
/// end at the Mini-C level: self-recursive lock acquisition inside the
/// cycle body is also caught (the self-call havocs the store before
/// the second acquire).
#[test]
fn self_recursive_relock_is_flagged() {
    let m = parse_module(
        "selfrec",
        r#"
lock mu;
void f(int n) {
    spin_lock(&mu);
    spin_unlock(&mu);
    if (n) { f(n - 1); }
    spin_lock(&mu);
    spin_unlock(&mu);
}
"#,
    )
    .unwrap();
    for mode in [Mode::NoConfine, Mode::Confine, Mode::AllStrong] {
        let r = check_locks(&m, mode);
        assert!(
            r.errors.iter().any(|e| e.found == LockState::Top),
            "{mode:?}: the post-recursion re-acquire sees ⊤"
        );
    }
}
