//! End-to-end tests of the flow-sensitive lock checker across the three
//! Section 7 analysis modes.

use localias_ast::parse_module;
use localias_ast::Module;
use localias_cqual::{check_locks, LockOp, Mode};

fn parse(src: &str) -> Module {
    parse_module("test", src).expect("parse")
}

/// `(no-confine, confine-inference, all-strong)` error counts.
fn counts(src: &str) -> (usize, usize, usize) {
    let m = parse(src);
    (
        check_locks(&m, Mode::NoConfine).error_count(),
        check_locks(&m, Mode::Confine).error_count(),
        check_locks(&m, Mode::AllStrong).error_count(),
    )
}

#[test]
fn scalar_global_lock_verifies_everywhere() {
    // A single global lock is a single-object location: strong updates
    // need no confine at all.
    let (none, conf, strong) = counts(
        r#"
        lock mu;
        extern void work();
        void f() {
            spin_lock(&mu);
            work();
            spin_unlock(&mu);
        }
        "#,
    );
    assert_eq!((none, conf, strong), (0, 0, 0));
}

#[test]
fn lock_array_needs_confine() {
    let (none, conf, strong) = counts(
        r#"
        lock locks[8];
        extern void work();
        void f(int i) {
            spin_lock(&locks[i]);
            work();
            spin_unlock(&locks[i]);
        }
        "#,
    );
    assert!(none > 0, "weak updates must fail: {none}");
    assert_eq!(conf, 0, "confine inference recovers the updates");
    assert_eq!(strong, 0);
    assert_eq!(none, 1, "exactly the unlock site fails");
}

#[test]
fn genuine_double_acquire_is_reported_in_all_modes() {
    let (none, conf, strong) = counts(
        r#"
        lock mu;
        void f() {
            spin_lock(&mu);
            spin_lock(&mu);
            spin_unlock(&mu);
        }
        "#,
    );
    assert!(strong > 0, "a real bug survives all-strong: {strong}");
    assert!(conf >= strong);
    assert!(none >= strong);
}

#[test]
fn genuine_double_release() {
    let (_, conf, strong) = counts(
        r#"
        lock mu;
        void f() {
            spin_lock(&mu);
            spin_unlock(&mu);
            spin_unlock(&mu);
        }
        "#,
    );
    assert!(strong > 0);
    assert!(conf > 0);
}

#[test]
fn branches_join() {
    // Lock held on one branch only: the unlock afterwards cannot be
    // verified even with strong updates.
    let (_, _, strong) = counts(
        r#"
        lock mu;
        void f(int c) {
            if (c) { spin_lock(&mu); }
            spin_unlock(&mu);
        }
        "#,
    );
    assert!(strong > 0, "⊤ after join must fail the release");
}

#[test]
fn balanced_branches_are_fine() {
    let (none, conf, strong) = counts(
        r#"
        lock mu;
        extern void a();
        extern void b();
        void f(int c) {
            spin_lock(&mu);
            if (c) { a(); } else { b(); }
            spin_unlock(&mu);
        }
        "#,
    );
    assert_eq!((none, conf, strong), (0, 0, 0));
}

#[test]
fn loops_reach_a_fixpoint() {
    let (none, conf, strong) = counts(
        r#"
        lock locks[4];
        extern void work();
        void f(int n) {
            for (int i = 0; i < n; i = i + 1) {
                spin_lock(&locks[i]);
                work();
                spin_unlock(&locks[i]);
            }
        }
        "#,
    );
    assert!(none > 0, "weak in-loop updates fail: {none}");
    assert_eq!(conf, 0, "confine in the loop body succeeds");
    assert_eq!(strong, 0);
}

#[test]
fn lock_held_across_loop_fails_even_strong() {
    // Acquiring inside the loop without releasing: the second iteration
    // double-acquires.
    let (_, _, strong) = counts(
        r#"
        lock mu;
        void f(int n) {
            while (n > 0) {
                spin_lock(&mu);
                n = n - 1;
            }
        }
        "#,
    );
    assert!(strong > 0);
}

#[test]
fn restrict_param_transfers_state_through_calls() {
    let (none, conf, strong) = counts(
        r#"
        lock locks[8];
        extern void work();
        void do_with_lock(lock *restrict l) {
            spin_lock(l);
            work();
            spin_unlock(l);
        }
        void foo(int i) { do_with_lock(&locks[i]); }
        "#,
    );
    // The restrict parameter gives the callee a single-object location:
    // no mode reports errors.
    assert_eq!((none, conf, strong), (0, 0, 0));
}

#[test]
fn unrestricted_param_needs_weak_updates() {
    let (none, _, strong) = counts(
        r#"
        lock locks[8];
        extern void work();
        void do_with_lock(lock *l) {
            spin_lock(l);
            work();
            spin_unlock(l);
        }
        void foo(int i) { do_with_lock(&locks[i]); }
        void bar(int i) { do_with_lock(&locks[i]); }
        "#,
    );
    assert!(none > 0, "unrestricted shared param conflates: {none}");
    assert_eq!(strong, 0);
}

#[test]
fn explicit_confine_statement_is_honored() {
    let m = parse(
        r#"
        lock locks[4];
        extern void work();
        void f(int i) {
            confine (&locks[i]) {
                spin_lock(&locks[i]);
                work();
                spin_unlock(&locks[i]);
            }
        }
        "#,
    );
    let r = check_locks(&m, Mode::NoConfine);
    assert_eq!(
        r.error_count(),
        0,
        "explicit confine enables strong updates without inference: {:?}",
        r.errors
    );
}

#[test]
fn sites_are_counted_once() {
    let m = parse(
        r#"
        lock mu;
        void helper() { spin_lock(&mu); spin_unlock(&mu); }
        void a() { helper(); }
        void b() { helper(); helper(); }
        "#,
    );
    let r = check_locks(&m, Mode::AllStrong);
    assert_eq!(r.sites, 2, "syntactic sites, not dynamic calls");
}

#[test]
fn interprocedural_requirement_at_call_site() {
    // Calling a routine that acquires `mu` while already holding it.
    let m = parse(
        r#"
        lock mu;
        void acquire() { spin_lock(&mu); }
        void f() {
            spin_lock(&mu);
            acquire();
        }
        "#,
    );
    let r = check_locks(&m, Mode::AllStrong);
    assert!(
        r.errors.iter().any(|e| e.op == LockOp::CallRequirement),
        "call-boundary violation must be reported: {:?}",
        r.errors
    );
}

#[test]
fn recursion_havocs_conservatively() {
    let m = parse(
        r#"
        lock mu;
        void rec(int n) {
            if (n > 0) { rec(n - 1); }
            spin_lock(&mu);
            spin_unlock(&mu);
        }
        "#,
    );
    // Must terminate and not panic; the recursive call havocs.
    let r = check_locks(&m, Mode::AllStrong);
    assert_eq!(r.sites, 2);
}

#[test]
fn sequential_confined_regions() {
    let (none, conf, strong) = counts(
        r#"
        lock locks[4];
        extern void work();
        void f(int i) {
            spin_lock(&locks[i]);
            spin_unlock(&locks[i]);
            spin_lock(&locks[i]);
            spin_unlock(&locks[i]);
        }
        "#,
    );
    assert!(none > 0);
    assert_eq!(conf, 0, "one confined region covers both pairs");
    assert_eq!(strong, 0);
}

#[test]
fn cast_defeats_confine_but_not_all_strong() {
    let (none, conf, strong) = counts(
        r#"
        lock locks[4];
        int sink;
        extern void work();
        void f(int i) {
            sink = (int) (&locks[i]);
            spin_lock(&locks[i]);
            work();
            spin_unlock(&locks[i]);
        }
        "#,
    );
    assert!(none > 0);
    assert!(conf > 0, "taint blocks confine: {conf}");
    assert_eq!(strong, 0, "all-strong is the upper bound");
}

#[test]
fn inferred_param_restricts_enable_strong_updates() {
    // The same program that fails with weak updates becomes clean once
    // parameter-restrict inference supplies the Figure 1 annotation.
    let m = parse(
        r#"
        lock locks[8];
        extern void work();
        void do_with_lock(lock *l) {
            spin_lock(l);
            work();
            spin_unlock(l);
        }
        void foo(int i) { do_with_lock(&locks[i]); }
        "#,
    );
    assert!(check_locks(&m, Mode::NoConfine).error_count() > 0);

    let mut analysis = localias_core::infer_param_restricts(&m);
    let r = localias_cqual::check_locks_with(&m, &mut analysis, Mode::NoConfine);
    assert_eq!(
        r.error_count(),
        0,
        "inferred parameter restrict must transfer state like the explicit one: {:?}",
        r.errors
    );
}

#[test]
fn restrict_declaration_enables_strong_updates() {
    // The C99-style declaration form: scope is the rest of the block.
    let m = parse(
        r#"
        lock locks[4];
        extern void work();
        void f(int i) {
            restrict lock *l = &locks[i];
            spin_lock(l);
            work();
            spin_unlock(l);
        }
        "#,
    );
    let r = check_locks(&m, Mode::NoConfine);
    assert_eq!(
        r.error_count(),
        0,
        "the restrict declaration must enable strong updates: {:?}",
        r.errors
    );
}

#[test]
fn scoped_restrict_statement_enables_strong_updates() {
    let m = parse(
        r#"
        lock locks[4];
        extern void work();
        void f(lock *q) {
            restrict l = q {
                spin_lock(l);
                work();
                spin_unlock(l);
            }
        }
        void g(int i) { f(&locks[i]); }
        "#,
    );
    let r = check_locks(&m, Mode::NoConfine);
    assert_eq!(r.error_count(), 0, "{:?}", r.errors);
}
