//! Interprocedural summary corner cases: lock acquisition split across
//! helpers, multiple restrict parameters, locks reached through return
//! values, and call chains.

use localias_ast::parse_module;
use localias_ast::Module;
use localias_cqual::{check_locks, Mode};

fn parse(src: &str) -> Module {
    parse_module("summaries", src).expect("parse")
}

fn strong(src: &str) -> usize {
    check_locks(&parse(src), Mode::AllStrong).error_count()
}

#[test]
fn acquire_release_split_across_helpers() {
    // Lock in one helper, unlock in another, sequenced by the caller:
    // summaries carry the held state across the boundary.
    let n = strong(
        r#"
        lock mu;
        void acquire() { spin_lock(&mu); }
        void release() { spin_unlock(&mu); }
        void f() {
            acquire();
            release();
        }
        "#,
    );
    // The split itself is fine in the caller; but each helper analyzed
    // standalone assumes all-unlocked entry, so `release` reports its
    // unlock (it cannot verify a lock it never saw acquired). This is the
    // "sequential acquiring/releasing" imprecision the paper's §7
    // discussion notes.
    assert_eq!(n, 1);
}

#[test]
fn matched_helpers_via_summary() {
    // A helper that acquires AND releases: callers see a net-identity
    // summary and stay clean even when calling repeatedly.
    let n = strong(
        r#"
        lock mu;
        extern void work();
        void critical() {
            spin_lock(&mu);
            work();
            spin_unlock(&mu);
        }
        void f() {
            critical();
            critical();
            critical();
        }
        "#,
    );
    assert_eq!(n, 0);
}

#[test]
fn two_restrict_params() {
    let n = strong(
        r#"
        lock tx[8];
        lock rx[8];
        extern void move_data();
        void xfer(lock *restrict a, lock *restrict b) {
            spin_lock(a);
            spin_lock(b);
            move_data();
            spin_unlock(b);
            spin_unlock(a);
        }
        void f(int i) { xfer(&tx[i], &rx[i]); }
        "#,
    );
    assert_eq!(n, 0, "independent restrict params both transfer state");
}

#[test]
fn restrict_params_with_weak_counts() {
    let m = parse(
        r#"
        lock tx[8];
        lock rx[8];
        extern void move_data();
        void xfer(lock *restrict a, lock *restrict b) {
            spin_lock(a);
            spin_lock(b);
            move_data();
            spin_unlock(b);
            spin_unlock(a);
        }
        void f(int i) { xfer(&tx[i], &rx[i]); }
        "#,
    );
    // Even without confine: the restrict parameters alone suffice.
    assert_eq!(check_locks(&m, Mode::NoConfine).error_count(), 0);
}

#[test]
fn net_locking_helper_leaves_lock_held() {
    // A helper with a *locking* net effect; the caller must release, and
    // a second call while held is flagged at the call site.
    let m = parse(
        r#"
        lock mu;
        void take() { spin_lock(&mu); }
        void good() {
            take();
            spin_unlock(&mu);
        }
        void bad() {
            take();
            take();
        }
        "#,
    );
    let r = check_locks(&m, Mode::AllStrong);
    assert!(
        r.errors.iter().any(|e| e.fun == "bad"),
        "double take() must be flagged in bad(): {:?}",
        r.errors
    );
    assert!(
        r.errors.iter().all(|e| e.fun != "good"),
        "good() is balanced: {:?}",
        r.errors
    );
}

#[test]
fn call_chain_three_deep() {
    let n = strong(
        r#"
        lock locks[8];
        extern void io();
        void leaf(lock *restrict l) { spin_lock(l); io(); spin_unlock(l); }
        void mid(lock *restrict l) { leaf(l); leaf(l); }
        void top(int i) { mid(&locks[i]); }
        "#,
    );
    assert_eq!(n, 0, "restrict state threads through two call levels");
}

#[test]
fn summary_of_conditional_locker_is_conservative() {
    // The helper locks only on one path: callers see ⊤ and cannot verify
    // a subsequent release.
    let m = parse(
        r#"
        lock mu;
        void maybe_take(int c) {
            if (c) { spin_lock(&mu); }
        }
        void f(int c) {
            maybe_take(c);
            spin_unlock(&mu);
        }
        "#,
    );
    let r = check_locks(&m, Mode::AllStrong);
    assert!(
        r.errors.iter().any(|e| e.fun == "f"),
        "the conditional summary must poison f's release: {:?}",
        r.errors
    );
}

#[test]
fn unused_functions_are_still_checked() {
    // Nothing calls `orphan`, but its sites count (syntactic counting).
    let m = parse(
        r#"
        lock mu;
        void orphan() {
            spin_lock(&mu);
            spin_lock(&mu);
            spin_unlock(&mu);
        }
        "#,
    );
    let r = check_locks(&m, Mode::AllStrong);
    assert_eq!(r.sites, 3);
    assert_eq!(r.error_count(), 1);
}
