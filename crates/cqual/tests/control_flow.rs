//! Tests of the checker's control-flow precision: `break`, `continue`,
//! `return` and unreachable paths. Device drivers use early exits
//! pervasively; an analysis that merged dead paths into live ones would
//! drown in spurious errors.

use localias_ast::parse_module;
use localias_ast::Module;
use localias_cqual::{check_locks, Mode};

fn parse(src: &str) -> Module {
    parse_module("test", src).expect("parse")
}

fn counts(src: &str) -> (usize, usize, usize) {
    let m = parse(src);
    (
        check_locks(&m, Mode::NoConfine).error_count(),
        check_locks(&m, Mode::Confine).error_count(),
        check_locks(&m, Mode::AllStrong).error_count(),
    )
}

#[test]
fn early_return_under_lock_is_balanced() {
    // Classic driver shape: error path releases and returns early; the
    // main path releases at the end. Both paths are balanced.
    let (none, conf, strong) = counts(
        r#"
        lock mu;
        int state;
        extern void handle();
        void f(int err) {
            spin_lock(&mu);
            if (err) {
                spin_unlock(&mu);
                return;
            }
            handle();
            state = 1;
            spin_unlock(&mu);
        }
        "#,
    );
    assert_eq!((none, conf, strong), (0, 0, 0));
}

#[test]
fn early_return_leaking_lock_is_detected_interprocedurally() {
    // The error path forgets the unlock: the *caller* re-acquiring sees
    // a possibly-held lock.
    let m = parse(
        r#"
        lock mu;
        void leaky(int err) {
            spin_lock(&mu);
            if (err) {
                return;
            }
            spin_unlock(&mu);
        }
        void g() {
            leaky(1);
            spin_lock(&mu);
            spin_unlock(&mu);
        }
        "#,
    );
    let r = check_locks(&m, Mode::AllStrong);
    assert!(
        r.error_count() > 0,
        "the possibly-leaked lock must fail g's acquire: {:?}",
        r.errors
    );
}

#[test]
fn code_after_return_is_dead() {
    // The spin_unlock after `return` is unreachable; the analysis must
    // not report it.
    let (_, _, strong) = counts(
        r#"
        lock mu;
        void f() {
            spin_lock(&mu);
            spin_unlock(&mu);
            return;
            spin_unlock(&mu);
        }
        "#,
    );
    assert_eq!(strong, 0, "unreachable release must not be counted");
}

#[test]
fn break_exits_with_the_lock_released() {
    let (none, conf, strong) = counts(
        r#"
        lock locks[4];
        extern int ready();
        void f(int n) {
            for (int i = 0; i < n; i = i + 1) {
                spin_lock(&locks[i]);
                if (ready() == 0) {
                    spin_unlock(&locks[i]);
                    break;
                }
                spin_unlock(&locks[i]);
            }
        }
        "#,
    );
    assert_eq!(strong, 0, "both exits are balanced");
    assert_eq!(conf, 0, "confine inference still covers the loop body");
    assert!(none > 0, "weak updates still fail on the array");
}

#[test]
fn break_while_holding_lock_is_detected() {
    // Breaking out with the lock held, then re-acquiring after the loop.
    let (_, _, strong) = counts(
        r#"
        lock mu;
        extern int cond();
        void f() {
            while (1) {
                spin_lock(&mu);
                if (cond()) {
                    break;
                }
                spin_unlock(&mu);
            }
            spin_lock(&mu);
            spin_unlock(&mu);
        }
        "#,
    );
    assert!(strong > 0, "re-acquire after lock-holding break must fail");
}

#[test]
fn continue_respects_lock_balance() {
    let (_, _, strong) = counts(
        r#"
        lock mu;
        extern int skip(int i);
        extern void work();
        void f(int n) {
            for (int i = 0; i < n; i = i + 1) {
                spin_lock(&mu);
                if (skip(i)) {
                    spin_unlock(&mu);
                    continue;
                }
                work();
                spin_unlock(&mu);
            }
        }
        "#,
    );
    assert_eq!(strong, 0, "both iteration paths are balanced");
}

#[test]
fn continue_while_holding_lock_is_detected() {
    let (_, _, strong) = counts(
        r#"
        lock mu;
        extern int skip(int i);
        void f(int n) {
            for (int i = 0; i < n; i = i + 1) {
                spin_lock(&mu);
                if (skip(i)) {
                    continue;
                }
                spin_unlock(&mu);
            }
        }
        "#,
    );
    assert!(
        strong > 0,
        "the next iteration's acquire sees a possibly-held lock"
    );
}

#[test]
fn scan_loop_with_break_is_confinable() {
    // Realistic: search for a device, stop at the first hit.
    let (none, conf, strong) = counts(
        r#"
        struct dev { lock mu; int id; };
        struct dev devs[8];
        extern void claim();
        void find(int want, int n) {
            for (int i = 0; i < n; i = i + 1) {
                struct dev *d = &devs[i];
                spin_lock(&d->mu);
                if (d->id == want) {
                    claim();
                    spin_unlock(&d->mu);
                    break;
                }
                spin_unlock(&d->mu);
            }
        }
        "#,
    );
    assert!(
        none > 0,
        "field-based aliasing defeats weak updates: {none}"
    );
    assert_eq!(conf, 0, "confine recovers the loop body: {conf}");
    assert_eq!(strong, 0);
}

#[test]
fn nested_loops_with_breaks() {
    let (_, _, strong) = counts(
        r#"
        lock mu;
        extern int hit(int i, int j);
        void f(int n) {
            for (int i = 0; i < n; i = i + 1) {
                for (int j = 0; j < n; j = j + 1) {
                    spin_lock(&mu);
                    if (hit(i, j)) {
                        spin_unlock(&mu);
                        break;
                    }
                    spin_unlock(&mu);
                }
            }
        }
        "#,
    );
    assert_eq!(strong, 0, "inner break targets the inner loop only");
}
