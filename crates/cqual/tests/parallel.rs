//! Determinism and thread-invariance of the call-graph-scheduled
//! checker.
//!
//! Two pinned properties:
//!
//! 1. **Definition-order invariance** (the `call_order` nondeterminism
//!    fix): shuffling function definitions must not change which errors
//!    are reported or their order. Node ids shift when definitions move,
//!    so reports are compared as `(fun, op, found)` sequences plus site
//!    counts.
//! 2. **Thread invariance**: `--intra-jobs N` must produce reports
//!    byte-identical to the sequential schedule, including around the
//!    legacy schedule's corner cases (self-recursion, mutual recursion,
//!    functions downstream of a cycle).

use localias_ast::parse_module;
use localias_cqual::{check_locks, check_locks_shared_jobs, LockOp, LockReport, LockState, Mode};

const MODES: [Mode; 3] = [Mode::NoConfine, Mode::Confine, Mode::AllStrong];

/// A report projected onto definition-order-independent data.
type Shape = (Vec<(String, LockOp, LockState)>, usize);

fn shape(r: &LockReport) -> Shape {
    (
        r.errors
            .iter()
            .map(|e| (e.fun.clone(), e.op, e.found))
            .collect(),
        r.sites,
    )
}

fn check_all_orders(fragments: &[&str]) {
    // A handful of deterministic orderings: forward, reverse, and two
    // rotations — enough to catch any dependence on definition order.
    let n = fragments.len();
    let orderings: Vec<Vec<usize>> = vec![
        (0..n).collect(),
        (0..n).rev().collect(),
        (0..n).map(|i| (i + 1) % n).collect(),
        (0..n).map(|i| (i + n / 2) % n).collect(),
    ];
    for mode in MODES {
        let mut baseline: Option<Shape> = None;
        for (k, ord) in orderings.iter().enumerate() {
            let src: String = ord.iter().map(|&i| fragments[i]).collect();
            let m = parse_module("shuffled", &src).expect("parse");
            let report = check_locks(&m, mode);
            let got = shape(&report);
            match &baseline {
                None => baseline = Some(got),
                Some(want) => {
                    assert_eq!(&got, want, "{mode:?}, ordering #{k}");
                }
            }
        }
    }
}

#[test]
fn reports_survive_definition_shuffling() {
    check_all_orders(&[
        "lock gl;\nlock arr[8];\nextern void work();\n",
        "void locker() { spin_lock(&gl); }\n",
        "void unlocker() { spin_unlock(&gl); }\n",
        "void weak(int i) { spin_lock(&arr[i]); work(); spin_unlock(&arr[i]); }\n",
        "void pair() { locker(); unlocker(); }\n",
        "void user(int i) { pair(); weak(i); }\n",
    ]);
}

#[test]
fn recursive_shapes_survive_definition_shuffling() {
    check_all_orders(&[
        "lock gl;\nextern void work();\n",
        "void selfy(int n) { spin_lock(&gl); selfy(n); spin_unlock(&gl); }\n",
        "void even(int n) { odd(n); }\n",
        "void odd(int n) { even(n); }\n",
        "void downstream(int n) { even(n); spin_lock(&gl); spin_unlock(&gl); }\n",
        "void caller(int n) { selfy(n); downstream(n); }\n",
    ]);
}

/// Every mode and thread count produces byte-identical reports, even on
/// the schedule's corner cases: a self-recursive callee scheduled after
/// its caller, mutual recursion, and functions dragged into the cyclic
/// remainder by being downstream of a cycle.
#[test]
fn thread_count_never_changes_the_report() {
    let src = r#"
        lock gl;
        lock arr[8];
        extern void work();
        void zrec(int n) { spin_lock(&gl); zrec(n); spin_unlock(&gl); }
        void arec(int n) { arec(n); spin_lock(&gl); spin_unlock(&gl); }
        void even(int n) { odd(n); }
        void odd(int n) { even(n); }
        void down(int n) { even(n); spin_lock(&arr[n]); work(); spin_unlock(&arr[n]); }
        void caller(int n) { arec(n); zrec(n); down(n); }
        void leaf(int i) { spin_lock(&arr[i]); work(); spin_unlock(&arr[i]); }
        void mid1(int i) { leaf(i); }
        void mid2(int i) { leaf(i); }
        void top(int i) { mid1(i); mid2(i); }
    "#;
    let m = parse_module("threads", src).expect("parse");
    for mode in MODES {
        let mut shared = localias_core::SharedAnalysis::new(&m);
        let sequential = check_locks_shared_jobs(&mut shared, mode, 1);
        // Entry points agree: the one-shot path equals the shared path.
        assert_eq!(check_locks(&m, mode), sequential, "{mode:?} one-shot");
        for jobs in [0, 2, 3, 8, 16] {
            let mut shared = localias_core::SharedAnalysis::new(&m);
            let parallel = check_locks_shared_jobs(&mut shared, mode, jobs);
            assert_eq!(parallel, sequential, "{mode:?} at intra_jobs={jobs}");
        }
    }
}

/// Repeated runs of the same input are bit-stable (no hash-iteration
/// dependence anywhere in the pipeline).
#[test]
fn repeated_runs_are_bit_stable() {
    let src = r#"
        lock arr[4];
        extern void work();
        void a(int i) { spin_lock(&arr[i]); work(); spin_unlock(&arr[i]); }
        void b(int i) { a(i); }
        void c(int i) { a(i); b(i); }
    "#;
    let m = parse_module("stable", src).expect("parse");
    for mode in MODES {
        let first = check_locks(&m, mode);
        for _ in 0..5 {
            assert_eq!(check_locks(&m, mode), first, "{mode:?}");
        }
    }
}
