//! A fast non-cryptographic hasher for the checker's hot maps.
//!
//! The incremental recheck path is dominated by small hash-map
//! operations (location maps, per-function caches, variable indexes)
//! whose keys are short strings or integers. `std`'s default SipHash is
//! DoS-resistant but ~5× slower on such keys; none of these maps are
//! keyed by attacker-controlled input across a trust boundary, so the
//! classic FxHash multiply-xor mix (as used by rustc) is the right
//! trade. Iteration order is never observable in reports — every
//! ordered artifact is assembled from the deterministic call-graph
//! schedule — so swapping the hasher cannot perturb output.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-xor hasher: one rotate, one xor, and one
/// multiply per 8-byte chunk.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut set = FxHashSet::default();
        for i in 0..10_000u32 {
            set.insert(i);
        }
        assert_eq!(set.len(), 10_000);
        let mut strs = FxHashSet::default();
        for i in 0..10_000u32 {
            strs.insert(format!("fun{i:04}"));
        }
        assert_eq!(strs.len(), 10_000);
    }

    #[test]
    fn tail_bytes_participate_in_the_hash() {
        fn h(b: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        }
        assert_ne!(h(b"abcdefgh1"), h(b"abcdefgh2"));
        assert_ne!(h(b"a"), h(b"a\0"), "length is mixed into the tail");
    }
}
