//! Fast non-cryptographic hashing for the checker's hot maps.
//!
//! The incremental recheck path is dominated by small hash-map
//! operations (location maps, per-function caches, variable indexes)
//! whose keys are short strings or integers; the classic FxHash
//! multiply-xor mix is the right trade there (none of these maps are
//! keyed by attacker-controlled input across a trust boundary).
//!
//! The hasher itself lives in `localias-alias` — this crate used to
//! carry a near-identical copy, now deduplicated into that single home
//! (see [`localias_alias::fx`]). Iteration order is never observable in
//! reports — every ordered artifact is assembled from the deterministic
//! call-graph schedule — so sharing one hasher cannot perturb output.

pub use localias_alias::fx::{FxHashMap, FxHashSet, FxHasher};
