//! The abstract store: lock state per abstract location, with strong and
//! weak updates.

use crate::qual::LockState;
use localias_alias::loc::Multiplicity;
use localias_alias::{Loc, LocTable};

/// A map from canonical lock locations to their abstract state. Absent
/// locations are implicitly [`LockState::Unlocked`] — the paper's "assume
/// that all locks begin in the state unlocked" — unless the store has
/// been **havocked** (a call into a recursive cycle whose effects are
/// unknown), in which case absent locations are [`LockState::Top`]:
/// after an unanalyzed call *every* lock may be in either state, not
/// just the ones this function happened to mention earlier.
///
/// A store can also be **unreachable** (the state after `return`,
/// `break`, or `continue` on the current path): every lookup is
/// [`LockState::Bot`], updates are ignored, and it is the identity of
/// [`Store::join`].
///
/// Internally a sorted vector: a module tracks only a handful of lock
/// locations, and the flow checker clones stores at every branch and
/// joins them at every merge — a flat array keeps a clone at one
/// allocation (a `memcpy`) and keeps equality canonical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Store {
    map: Vec<(Loc, LockState)>,
    unreachable: bool,
    havocked: bool,
}

impl Store {
    /// The empty (all-unlocked) store.
    pub fn new() -> Self {
        Store::default()
    }

    /// An unreachable store — the identity of [`Store::join`].
    pub fn bottom() -> Self {
        Store {
            map: Vec::new(),
            unreachable: true,
            havocked: false,
        }
    }

    /// The state of a location this store holds no entry for.
    #[inline]
    fn default_state(&self) -> LockState {
        if self.havocked {
            LockState::Top
        } else {
            LockState::Unlocked
        }
    }

    /// Index of `loc` in the sorted entry list, or where to insert it.
    #[inline]
    fn pos(&self, loc: Loc) -> Result<usize, usize> {
        self.map.binary_search_by_key(&loc, |&(l, _)| l)
    }

    /// Marks this path dead (after `return`/`break`/`continue`).
    pub fn mark_unreachable(&mut self) {
        self.map.clear();
        self.unreachable = true;
        // ⊥ must be canonical (it is the join identity and compares by
        // `==` in fixpoints), so the havoc flag resets with the path.
        self.havocked = false;
    }

    /// Whether the current path is dead.
    pub fn is_unreachable(&self) -> bool {
        self.unreachable
    }

    /// Current state of `loc` (canonicalize first via `locs.find`).
    pub fn state(&self, loc: Loc) -> LockState {
        if self.unreachable {
            return LockState::Bot;
        }
        match self.pos(loc) {
            Ok(i) => self.map[i].1,
            Err(_) => self.default_state(),
        }
    }

    /// Sets `loc`'s state outright (used for scope copy-in).
    pub fn set(&mut self, loc: Loc, s: LockState) {
        if self.unreachable {
            return;
        }
        match self.pos(loc) {
            Ok(i) => self.map[i].1 = s,
            Err(i) => self.map.insert(i, (loc, s)),
        }
    }

    /// Updates `loc` to `new`, strongly when allowed.
    ///
    /// A strong update overwrites; a weak update joins with the previous
    /// state, because the abstract location may stand for concrete locks
    /// other than the one that changed.
    pub fn update(&mut self, loc: Loc, new: LockState, strong: bool) {
        if self.unreachable {
            return;
        }
        match self.pos(loc) {
            Ok(i) => {
                let cur = self.map[i].1;
                self.map[i].1 = if strong { new } else { cur.weak_update(new) };
            }
            Err(i) => {
                let s = if strong {
                    new
                } else {
                    self.default_state().weak_update(new)
                };
                self.map.insert(i, (loc, s));
            }
        }
    }

    /// Joins another store pointwise (control-flow merge).
    pub fn join(&mut self, other: &Store) {
        if other.unreachable {
            return;
        }
        if self.unreachable {
            *self = other.clone();
            return;
        }
        for &(loc, s) in &other.map {
            let mine = self.state(loc);
            self.set(loc, mine.join(s));
        }
        // Locations only in self keep their state: other's implicit
        // default (Unlocked, or Top when havocked) must still join in.
        for e in &mut self.map {
            if other.pos(e.0).is_err() {
                e.1 = e.1.join(other.default_state());
            }
        }
        self.havocked |= other.havocked;
        self.normalize();
    }

    /// Conservatively forgets everything (e.g. after a call into a
    /// recursive cycle). Marks the store havocked: from here on even
    /// never-mentioned locations read as [`LockState::Top`] — the
    /// unanalyzed callee may have acquired or released *any* lock, not
    /// only the ones this function touched before the call.
    pub fn havoc(&mut self) {
        if self.unreachable {
            return;
        }
        self.map.clear();
        self.havocked = true;
    }

    /// Whether an unanalyzed call has clobbered this path.
    pub fn is_havocked(&self) -> bool {
        self.havocked
    }

    /// Drops entries equal to the implicit default so equal abstract
    /// states share one representation (`==` drives fixpoints).
    fn normalize(&mut self) {
        if self.havocked {
            self.map.retain(|&(_, s)| s != LockState::Top);
        }
    }

    /// The touched locations and their states.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, LockState)> + '_ {
        self.map.iter().copied()
    }

    /// Whether `loc` has ever been explicitly set/updated (used when
    /// building call summaries to record entry requirements). After a
    /// havoc everything counts as touched: a requirement first seen
    /// past an unanalyzed call is not an entry precondition.
    pub fn touched(&self, loc: Loc) -> bool {
        self.havocked || self.pos(loc).is_ok()
    }
}

/// Whether `loc` may be strongly updated: it must stand for at most one
/// concrete object and the alias analysis must not have lost track of it.
///
/// `restrict`/`confine` scopes introduce fresh locations of multiplicity
/// one — this predicate is exactly where their payoff lands.
pub fn strong_updatable(locs: &mut LocTable, loc: Loc) -> bool {
    locs.multiplicity(loc) <= Multiplicity::One && !locs.is_tainted(loc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_alias::Ty;

    #[test]
    fn default_state_is_unlocked() {
        let s = Store::new();
        assert_eq!(s.state(Loc(3)), LockState::Unlocked);
    }

    #[test]
    fn strong_vs_weak() {
        let mut s = Store::new();
        s.update(Loc(0), LockState::Locked, true);
        assert_eq!(s.state(Loc(0)), LockState::Locked);
        s.update(Loc(0), LockState::Unlocked, true);
        assert_eq!(s.state(Loc(0)), LockState::Unlocked);

        let mut w = Store::new();
        w.update(Loc(1), LockState::Locked, false);
        assert_eq!(
            w.state(Loc(1)),
            LockState::Top,
            "weak acquire from unlocked leaves either-state"
        );
    }

    #[test]
    fn join_merges_pointwise() {
        let mut a = Store::new();
        a.update(Loc(0), LockState::Locked, true);
        let b = Store::new(); // implicit unlocked
        a.join(&b);
        assert_eq!(a.state(Loc(0)), LockState::Top);

        let mut c = Store::new();
        c.update(Loc(0), LockState::Locked, true);
        let mut d = Store::new();
        d.update(Loc(0), LockState::Locked, true);
        c.join(&d);
        assert_eq!(c.state(Loc(0)), LockState::Locked);
    }

    #[test]
    fn havoc_tops_everything_including_unmentioned() {
        let mut s = Store::new();
        s.update(Loc(0), LockState::Locked, true);
        s.havoc();
        assert_eq!(s.state(Loc(0)), LockState::Top);
        // A lock this function never mentioned may still have been
        // acquired by the unanalyzed callee: it must read Top, not the
        // initial implicit Unlocked (the fuzz oracle's recursion
        // counterexample — see crates/cqual/tests/fuzz_regressions.rs).
        assert_eq!(s.state(Loc(9)), LockState::Top);
        assert!(s.is_havocked());
        assert!(s.touched(Loc(9)), "post-havoc reqs are not preconditions");
    }

    #[test]
    fn join_spreads_havoc_pointwise() {
        // then-branch called into a cycle, else-branch stayed clean: at
        // the merge every lock is unknown on *some* path.
        let mut then_side = Store::new();
        then_side.havoc();
        let mut else_side = Store::new();
        else_side.update(Loc(2), LockState::Locked, true);
        else_side.join(&then_side);
        assert!(else_side.is_havocked());
        assert_eq!(else_side.state(Loc(2)), LockState::Top);
        assert_eq!(else_side.state(Loc(7)), LockState::Top);

        // Join is order-symmetric on the abstract state.
        let mut a = Store::new();
        a.havoc();
        let mut b = Store::new();
        b.update(Loc(2), LockState::Locked, true);
        a.join(&b);
        assert_eq!(a, else_side, "normalized representations agree");

        // Unreachable stays the identity and stays canonical ⊥.
        let mut dead = Store::new();
        dead.havoc();
        dead.mark_unreachable();
        assert_eq!(dead, Store::bottom());
    }

    #[test]
    fn bottom_is_join_identity_and_inert() {
        let mut b = Store::bottom();
        assert!(b.is_unreachable());
        assert_eq!(b.state(Loc(0)), LockState::Bot);
        b.update(Loc(0), LockState::Locked, true);
        assert_eq!(b.state(Loc(0)), LockState::Bot, "updates on ⊥ ignored");

        let mut s = Store::new();
        s.update(Loc(1), LockState::Locked, true);
        let snapshot = s.clone();
        s.join(&Store::bottom());
        assert_eq!(s, snapshot, "⊥ is the right identity");

        let mut b2 = Store::bottom();
        b2.join(&snapshot);
        assert_eq!(b2, snapshot, "⊥ is the left identity");
    }

    #[test]
    fn strong_updatability() {
        let mut t = LocTable::new();
        let single = t.fresh_with("x", Ty::Lock, Multiplicity::One);
        let many = t.fresh_with("arr[]", Ty::Lock, Multiplicity::Many);
        assert!(strong_updatable(&mut t, single));
        assert!(!strong_updatable(&mut t, many));
        let tainted = t.fresh_with("y", Ty::Lock, Multiplicity::One);
        t.taint(tainted);
        assert!(!strong_updatable(&mut t, tainted));
        // Merging a single with another single makes both Many.
        let s2 = t.fresh_with("z", Ty::Lock, Multiplicity::One);
        t.union_raw(single, s2);
        assert!(!strong_updatable(&mut t, single));
    }
}
