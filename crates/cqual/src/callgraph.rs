//! The explicit call graph the interprocedural checker is scheduled
//! over.
//!
//! Nodes are the module's *defined* functions, identified by
//! alphabetically-sorted ids, so the graph — and everything derived from
//! it — is independent of both definition order and hash iteration
//! order. (The predecessor of this module, the ad-hoc `call_order` pass,
//! iterated `HashMap`/`HashSet` and was deterministic only by luck.)
//!
//! Three layers of structure are computed once, up front:
//!
//! 1. **Tarjan SCC condensation** ([`CallGraph::scc_of`],
//!    [`CallGraph::sccs`]): the recursion groups. Calls into a recursive
//!    group cannot use a summary and conservatively havoc the store.
//! 2. **Schedule positions** ([`CallGraph::pos`], [`CallGraph::order`]):
//!    the bottom-up order functions are summarized in. This reproduces
//!    the legacy sequential schedule bit-for-bit — Kahn rounds with
//!    alphabetical tie-breaks, self-recursive callees ignored for
//!    readiness, and the undrainable remainder (functions on or
//!    downstream of a mutual-recursion cycle) appended alphabetically
//!    and marked [`CallGraph::is_cyclic`] — so reports are byte-identical
//!    to the historical checker.
//! 3. **Wave schedule** ([`CallGraph::waves`]): antichains of the
//!    summary-dependency DAG. Function `f` depends on callee `c` exactly
//!    when `pos(c) < pos(f)` (that is precisely when the sequential
//!    checker consumes `c`'s summary at `f`'s call sites); every such
//!    edge decreases `pos`, so the dependency relation is acyclic even
//!    across recursion groups. Wave `k` holds the functions whose longest
//!    dependency chain has length `k`; all functions in one wave are
//!    mutually independent and may be checked in parallel.

use localias_ast::visit::{walk_expr, Visitor};
use localias_ast::{Expr, ExprKind, Module};
use localias_obs as obs;
use std::collections::HashMap;

/// A call graph over a module's defined functions, with its SCC
/// condensation, a deterministic bottom-up schedule, and a parallel wave
/// partition. See the module docs for how the pieces relate.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Function names; the node id *is* the index into this sorted list.
    names: Vec<String>,
    /// Name → node id.
    index: HashMap<String, usize>,
    /// Sorted, deduplicated defined callees per node, excluding self.
    callees: Vec<Vec<usize>>,
    /// Whether the function calls itself directly.
    self_rec: Vec<bool>,
    /// SCC id per node (Tarjan, over the callee edges).
    scc_of: Vec<usize>,
    /// SCC member lists, in reverse-topological (callees-first) order.
    sccs: Vec<Vec<usize>>,
    /// Treated as recursive by the checker: direct self-recursion, or on/
    /// downstream of a mutual-recursion cycle (the legacy rule).
    cyclic: Vec<bool>,
    /// Node ids in schedule order (the legacy sequential order).
    order: Vec<usize>,
    /// Schedule position per node (`pos[order[i]] == i`).
    pos: Vec<usize>,
    /// Summary dependencies per node: callees with a smaller position.
    deps: Vec<Vec<usize>>,
    /// Wave partition: `waves[k]` lists the nodes (by ascending position)
    /// whose longest dependency chain has length `k`.
    waves: Vec<Vec<usize>>,
}

/// Collects the callee names of one function body.
struct Calls {
    out: Vec<String>,
}

impl Visitor for Calls {
    fn visit_expr(&mut self, e: &Expr) {
        if let ExprKind::Call(name, _) = &e.kind {
            self.out.push(name.name.to_string());
        }
        walk_expr(self, e);
    }
}

impl CallGraph {
    /// Builds the graph, condensation, schedule, and waves for `m`.
    pub fn build(m: &Module) -> CallGraph {
        let _span = obs::span!("cqual.graph");
        // Node ids: defined function names, sorted — so numeric order on
        // ids is alphabetical order on names, whatever the definition
        // order was.
        let mut names: Vec<String> = m.functions().map(|f| f.name.name.to_string()).collect();
        names.sort();
        names.dedup();
        let index: HashMap<String, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let n = names.len();

        // Edges. With duplicate definitions the later definition's callee
        // set wins (mirroring the legacy last-wins function map), while
        // self-recursion accumulates across definitions.
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut self_rec = vec![false; n];
        for f in m.functions() {
            let v = index[f.name.name.as_str()];
            let mut calls = Calls { out: Vec::new() };
            calls.visit_block(&f.body);
            let mut out = Vec::new();
            for callee in calls.out {
                if callee == f.name.name {
                    self_rec[v] = true;
                } else if let Some(&c) = index.get(&callee) {
                    out.push(c);
                }
            }
            out.sort_unstable();
            out.dedup();
            callees[v] = out;
        }

        let (scc_of, sccs) = tarjan(&callees);
        let (order, cyclic) = schedule(&callees, &self_rec);
        let mut pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }

        // Summary dependencies: exactly the call edges the sequential
        // checker resolves through a summary (callee summarized earlier).
        // Every edge decreases `pos`, so the relation is acyclic.
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in 0..n {
            deps[v] = callees[v]
                .iter()
                .copied()
                .filter(|&c| pos[c] < pos[v])
                .collect();
        }

        // Longest-path levels over the dependency DAG. Processing in
        // schedule order guarantees dependencies are leveled first.
        let mut level = vec![0usize; n];
        let mut waves: Vec<Vec<usize>> = Vec::new();
        for &v in &order {
            let lvl = deps[v].iter().map(|&c| level[c] + 1).max().unwrap_or(0);
            level[v] = lvl;
            if waves.len() <= lvl {
                waves.resize(lvl + 1, Vec::new());
            }
            waves[lvl].push(v);
        }

        CallGraph {
            names,
            index,
            callees,
            self_rec,
            scc_of,
            sccs,
            cyclic,
            order,
            pos,
            deps,
            waves,
        }
    }

    /// Number of defined functions (nodes).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the module defines no functions.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The function name of node `v`.
    pub fn name(&self, v: usize) -> &str {
        &self.names[v]
    }

    /// The node id of a defined function, if any.
    pub fn node(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Sorted defined callees of `v` (excluding `v` itself).
    pub fn callees(&self, v: usize) -> &[usize] {
        &self.callees[v]
    }

    /// Whether `v` calls itself directly.
    pub fn is_self_recursive(&self, v: usize) -> bool {
        self.self_rec[v]
    }

    /// Whether the checker treats `v` as recursive: calls to `v` havoc
    /// unless `v`'s summary is already scheduled (see
    /// [`CallGraph::uses_summary`]).
    pub fn is_cyclic(&self, v: usize) -> bool {
        self.cyclic[v]
    }

    /// The SCC id of `v` in the Tarjan condensation.
    pub fn scc_of(&self, v: usize) -> usize {
        self.scc_of[v]
    }

    /// All SCC member lists, callees-first.
    pub fn sccs(&self) -> &[Vec<usize>] {
        &self.sccs
    }

    /// Number of SCCs in the condensation.
    pub fn scc_count(&self) -> usize {
        self.sccs.len()
    }

    /// Node ids in bottom-up schedule order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The schedule position of `v`.
    pub fn pos(&self, v: usize) -> usize {
        self.pos[v]
    }

    /// The summary dependencies of `v`: callees checked before `v`.
    pub fn deps(&self, v: usize) -> &[usize] {
        &self.deps[v]
    }

    /// The wave partition: each wave lists mutually-independent nodes in
    /// ascending schedule position; a node's dependencies all live in
    /// strictly earlier waves.
    pub fn waves(&self) -> &[Vec<usize>] {
        &self.waves
    }

    /// Whether a call *from* `caller` *to* `callee` consumes `callee`'s
    /// summary — exactly when the sequential schedule has already
    /// summarized the callee. Otherwise the call havocs if the callee is
    /// cyclic, and is a no-op if it is merely later in the schedule
    /// (which only happens for cyclic callees) or undefined.
    pub fn uses_summary(&self, caller: usize, callee: usize) -> bool {
        self.pos[callee] < self.pos[caller]
    }

    /// Whether `f`'s body yields exactly node `v`'s recorded edges (the
    /// same defined-callee set and self-recursion flag). A graph built
    /// over a *different* parse of the module is still valid verbatim
    /// when the function name sequence is unchanged and this holds for
    /// every function whose body changed — the graph mentions no node
    /// ids, only names and indices.
    pub fn callees_match(&self, v: usize, f: &localias_ast::FunDef) -> bool {
        let mut calls = Calls { out: Vec::new() };
        calls.visit_block(&f.body);
        let mut out = Vec::new();
        let mut self_rec = false;
        for callee in calls.out {
            if callee == f.name.name {
                self_rec = true;
            } else if let Some(&c) = self.index.get(&callee) {
                out.push(c);
            }
        }
        out.sort_unstable();
        out.dedup();
        self_rec == self.self_rec[v] && out == self.callees[v]
    }
}

/// Iterative Tarjan SCC over the callee edges. Returns the SCC id of
/// every node plus member lists in reverse-topological (callees-first)
/// order; members are listed in ascending node id.
fn tarjan(callees: &[Vec<usize>]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let n = callees.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;

    // (node, next child position) frames of the explicit DFS stack.
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < callees[v].len() {
                let w = callees[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.sort_unstable();
                    sccs.push(members);
                }
            }
        }
    }
    (scc_of, sccs)
}

/// The legacy-compatible bottom-up schedule: Kahn rounds with
/// alphabetical (= node-id) tie-breaks, where a self-recursive callee
/// never blocks readiness, followed by the undrainable remainder in
/// alphabetical order. Returns `(order, cyclic)` where `cyclic` marks
/// self-recursive functions and the whole remainder.
fn schedule(callees: &[Vec<usize>], self_rec: &[bool]) -> (Vec<usize>, Vec<bool>) {
    let n = callees.len();
    let mut remaining = vec![true; n];
    let mut order = Vec::with_capacity(n);
    loop {
        let ready: Vec<usize> = (0..n)
            .filter(|&v| remaining[v] && callees[v].iter().all(|&c| !remaining[c] || self_rec[c]))
            .collect();
        if ready.is_empty() {
            break;
        }
        for &v in &ready {
            remaining[v] = false;
        }
        order.extend(ready);
    }
    let mut cyclic = self_rec.to_vec();
    let rest: Vec<usize> = (0..n).filter(|&v| remaining[v]).collect();
    for &v in &rest {
        cyclic[v] = true;
    }
    order.extend(rest);
    (order, cyclic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use localias_ast::parse_module;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(&parse_module("t", src).expect("parse"))
    }

    #[test]
    fn linear_chain_schedules_callees_first() {
        let g = graph(
            r#"
            void c() {}
            void b() { c(); }
            void a() { b(); }
            "#,
        );
        let order: Vec<&str> = g.order().iter().map(|&v| g.name(v)).collect();
        assert_eq!(order, ["c", "b", "a"]);
        assert_eq!(g.waves().len(), 3);
        assert_eq!(g.scc_count(), 3);
        assert!(!g.is_cyclic(g.node("a").unwrap()));
    }

    #[test]
    fn siblings_share_a_wave_alphabetically() {
        let g = graph(
            r#"
            void z() {}
            void m() { z(); }
            void a() { z(); }
            void top() { a(); m(); }
            "#,
        );
        let order: Vec<&str> = g.order().iter().map(|&v| g.name(v)).collect();
        assert_eq!(order, ["z", "a", "m", "top"]);
        let waves: Vec<Vec<&str>> = g
            .waves()
            .iter()
            .map(|w| w.iter().map(|&v| g.name(v)).collect())
            .collect();
        assert_eq!(waves, [vec!["z"], vec!["a", "m"], vec!["top"]]);
    }

    #[test]
    fn mutual_recursion_lands_in_one_scc_and_is_cyclic() {
        let g = graph(
            r#"
            void even(int n) { odd(n); }
            void odd(int n) { even(n); }
            void user() { even(3); }
            "#,
        );
        let even = g.node("even").unwrap();
        let odd = g.node("odd").unwrap();
        let user = g.node("user").unwrap();
        assert_eq!(g.scc_of(even), g.scc_of(odd));
        assert_ne!(g.scc_of(even), g.scc_of(user));
        assert!(g.is_cyclic(even) && g.is_cyclic(odd));
        // The legacy rule drags everything downstream of the cycle into
        // the cyclic remainder.
        assert!(g.is_cyclic(user));
        let order: Vec<&str> = g.order().iter().map(|&v| g.name(v)).collect();
        assert_eq!(order, ["even", "odd", "user"]);
    }

    #[test]
    fn self_recursion_does_not_block_callers() {
        let g = graph(
            r#"
            void rec(int n) { rec(n); }
            void caller() { rec(1); }
            "#,
        );
        let rec = g.node("rec").unwrap();
        assert!(g.is_self_recursive(rec) && g.is_cyclic(rec));
        let caller = g.node("caller").unwrap();
        assert!(!g.is_cyclic(caller));
        // `caller` < `rec` alphabetically, and rec never blocks, so both
        // drain in the first round — caller first.
        let order: Vec<&str> = g.order().iter().map(|&v| g.name(v)).collect();
        assert_eq!(order, ["caller", "rec"]);
        // With pos(rec) > pos(caller), the call havocs instead of using a
        // summary.
        assert!(!g.uses_summary(caller, rec));
    }

    #[test]
    fn waves_respect_dependencies() {
        let g = graph(
            r#"
            void leaf1() {}
            void leaf2() {}
            void mid1() { leaf1(); }
            void mid2() { leaf1(); leaf2(); }
            void top() { mid1(); mid2(); }
            "#,
        );
        let mut wave_of = vec![0usize; g.len()];
        for (k, wave) in g.waves().iter().enumerate() {
            for &v in wave {
                wave_of[v] = k;
            }
        }
        for v in 0..g.len() {
            for &d in g.deps(v) {
                assert!(wave_of[d] < wave_of[v], "{} dep {}", g.name(v), g.name(d));
            }
        }
        // Every node appears in exactly one wave.
        let total: usize = g.waves().iter().map(|w| w.len()).sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn graph_is_stable_under_definition_reordering() {
        let fwd = r#"
            void a() { b(); }
            void b() { c(); }
            void c() {}
            void d() { a(); c(); }
        "#;
        let rev = r#"
            void d() { a(); c(); }
            void c() {}
            void b() { c(); }
            void a() { b(); }
        "#;
        let g1 = graph(fwd);
        let g2 = graph(rev);
        let names = |g: &CallGraph| -> Vec<String> {
            g.order().iter().map(|&v| g.name(v).to_string()).collect()
        };
        assert_eq!(names(&g1), names(&g2));
        assert_eq!(g1.waves(), g2.waves());
        assert_eq!(g1.sccs(), g2.sccs());
    }
}
