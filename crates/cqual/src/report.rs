//! Lock-checking error reports.

use crate::qual::LockState;
use localias_ast::NodeId;
use std::fmt;

/// Which operation failed to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockOp {
    /// `spin_lock(e)` — requires `unlocked`.
    Acquire,
    /// `spin_unlock(e)` — requires `locked`.
    Release,
    /// A call whose callee requires a lock state on entry.
    CallRequirement,
}

impl fmt::Display for LockOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockOp::Acquire => "spin_lock",
            LockOp::Release => "spin_unlock",
            LockOp::CallRequirement => "call",
        };
        write!(f, "{s}")
    }
}

/// One unverifiable lock site — the unit the paper's Section 7 counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockError {
    /// The offending call expression.
    pub site: NodeId,
    /// The operation.
    pub op: LockOp,
    /// The state the analysis had for the lock at that point.
    pub found: LockState,
    /// The enclosing function.
    pub fun: String,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: cannot verify {} (lock state is {})",
            self.fun, self.op, self.found
        )
    }
}

/// The result of checking one module's locking behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockReport {
    /// Unverifiable sites (the paper's "type errors").
    pub errors: Vec<LockError>,
    /// Total number of syntactic `spin_lock`/`spin_unlock` sites.
    pub sites: usize,
}

impl LockReport {
    /// Number of type errors (the paper's per-module metric).
    pub fn error_count(&self) -> usize {
        self.errors.len()
    }
}

impl fmt::Display for LockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} lock sites cannot be verified",
            self.errors.len(),
            self.sites
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = LockError {
            site: NodeId(3),
            op: LockOp::Release,
            found: LockState::Top,
            fun: "f".into(),
        };
        assert_eq!(
            e.to_string(),
            "f: cannot verify spin_unlock (lock state is ⊤)"
        );
        let r = LockReport {
            errors: vec![e],
            sites: 4,
        };
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.to_string(), "1 of 4 lock sites cannot be verified");
    }
}
