//! The intraprocedural checker: one function, checked against immutable
//! shared inputs.
//!
//! [`check_function`] is a *pure function* of the [`CheckContext`] (the
//! frozen analysis facts) and the already-published callee
//! [`Summaries`]; it mutates nothing shared and returns a
//! [`FunOutcome`]. That referential transparency is what lets the
//! scheduler in [`crate::flow`] run a whole wave of independent
//! functions concurrently and still assemble a report byte-identical to
//! the sequential order.
//!
//! The abstract interpretation itself is unchanged from the historical
//! monolithic checker: straight-line composition for blocks, pointwise
//! join for `if`, fixpoint-then-reporting-pass for `while`, summaries
//! applied (after restrict-parameter retargeting) at call sites, and
//! havoc on calls into recursive cycles. Every location resolution that
//! used to path-compress through `&mut LocTable` now reads the
//! [`FrozenLocs`] snapshot.

use crate::callgraph::CallGraph;
use crate::fx::{FxHashMap, FxHashSet};
use crate::qual::LockState;
use crate::report::{LockError, LockOp};
use crate::store::Store;
use crate::summary::{retarget, ParamInfo, Summaries, Summary};
use localias_alias::{FrozenLocs, Loc, State, Ty};
use localias_ast::{intrinsics, Block, Expr, ExprKind, FunDef, Module, NodeId, Stmt, StmtKind};
use localias_core::{Analysis, ConfineSite};
use localias_obs as obs;
use std::sync::Arc;

use crate::flow::Mode;

/// A scope boundary requiring lock-state copy-in/copy-out.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RangeScope {
    pub(crate) start: usize,
    pub(crate) end: usize,
    pub(crate) rho: Loc,
    pub(crate) rho_p: Loc,
}

/// Everything a function check reads and nothing it writes: the module,
/// the frozen analysis facts, the call graph, and per-function scope/
/// parameter metadata. Immutable after construction and `Sync`, so one
/// context serves every checker thread.
pub(crate) struct CheckContext<'a> {
    pub mode: Mode,
    /// The typing/aliasing state (read-only: expression types, variables).
    pub(crate) state: &'a State,
    /// The frozen location snapshot all resolution goes through.
    pub frozen: &'a FrozenLocs,
    /// The call graph with its schedule and wave partition. Shared:
    /// the graph depends only on the module, so one build serves every
    /// mode's context (see [`CheckContext::new_shared`]).
    pub graph: Arc<CallGraph>,
    /// Range scopes by block id, from confine outcomes.
    pub(crate) range_scopes: FxHashMap<NodeId, Vec<RangeScope>>,
    /// `(ρ, ρ')` for explicit confine/restrict statements, by stmt id.
    pub(crate) stmt_scopes: FxHashMap<NodeId, (Loc, Loc)>,
    /// Per-function parameter metadata, indexed by call-graph node;
    /// `Arc` so each call site shares it across threads instead of
    /// cloning the vector.
    pub(crate) params: Vec<Arc<Vec<ParamInfo>>>,
}

impl<'a> CheckContext<'a> {
    /// Collects the scope and parameter metadata for checking `m` under
    /// `mode`, given its (frozen) analysis.
    pub fn new(
        m: &'a Module,
        analysis: &'a Analysis,
        frozen: &'a FrozenLocs,
        mode: Mode,
    ) -> CheckContext<'a> {
        Self::new_shared(m, analysis, frozen, mode, Arc::new(CallGraph::build(m)))
    }

    /// [`CheckContext::new`] with a pre-built call graph — the graph is
    /// a function of the module alone, so callers constructing several
    /// contexts over one module (one per analysis/mode) build it once.
    pub fn new_shared(
        m: &'a Module,
        analysis: &'a Analysis,
        frozen: &'a FrozenLocs,
        mode: Mode,
        graph: Arc<CallGraph>,
    ) -> CheckContext<'a> {
        let _span = obs::span!("cqual.context");
        let mut range_scopes: FxHashMap<NodeId, Vec<RangeScope>> = FxHashMap::default();
        let mut stmt_scopes = FxHashMap::default();
        for c in &analysis.confines {
            let Some((rho, rho_p)) = c.locs else { continue };
            match c.site {
                ConfineSite::Range { block, start, end } => {
                    range_scopes.entry(block).or_default().push(RangeScope {
                        start,
                        end,
                        rho,
                        rho_p,
                    });
                }
                ConfineSite::Stmt(at) => {
                    stmt_scopes.insert(at, (rho, rho_p));
                }
            }
        }
        for r in &analysis.restricts {
            if let Some((rho, rho_p)) = r.locs {
                // Parameter restricts are keyed by the function node and
                // handled through summaries; statement/decl restricts are
                // keyed by their statement node. A function node is never
                // a statement node, so one map serves both without
                // ambiguity.
                stmt_scopes.insert(r.at, (rho, rho_p));
            }
        }
        // Copy-in/out ordering: at a shared start boundary the wider
        // (outer) scope must copy in first.
        for scopes in range_scopes.values_mut() {
            scopes.sort_by_key(|s| (s.start, std::cmp::Reverse(s.end)));
        }

        // Parameter metadata. A parameter behaves as restrict if the
        // programmer wrote the qualifier *or* parameter-restrict
        // inference proved it (a successful candidate keyed by the
        // function node and parameter name).
        let inferred: FxHashSet<(NodeId, &str)> = analysis
            .candidates
            .iter()
            .filter(|c| c.restricted)
            .map(|c| (c.at, c.name.as_str()))
            .collect();
        // The alias analysis records each function's *bound* parameter
        // value types (post binding hooks, first definition wins), so
        // parameter metadata is a direct positional lookup — no pass
        // over the variable table. For duplicate definitions the later
        // one wins, matching the name-keyed function map.
        let empty = Arc::new(Vec::new());
        let mut params: Vec<Arc<Vec<ParamInfo>>> = vec![empty; graph.len()];
        for f in m.functions() {
            let Some(v) = graph.node(&f.name.name) else {
                continue;
            };
            let tys = analysis.state.param_tys.get(f.name.name.as_str());
            let mut infos = Vec::with_capacity(f.params.len());
            for (i, p) in f.params.iter().enumerate() {
                let rho_p = tys.and_then(|t| t.get(i)).and_then(|ty| ty.pointee());
                let restrict = p.restrict || inferred.contains(&(f.id, p.name.name.as_str()));
                infos.push(ParamInfo { rho_p, restrict });
            }
            params[v] = Arc::new(infos);
        }

        CheckContext {
            mode,
            state: &analysis.state,
            frozen,
            graph,
            range_scopes,
            stmt_scopes,
            params,
        }
    }

    /// Re-tags the context with a different [`Mode`]. The mode only
    /// gates behaviour inside [`check_function`]; everything the
    /// context *holds* is mode-independent, so `NoConfine` and
    /// `AllStrong` (which consume the same base analysis) can share one
    /// construction.
    pub(crate) fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }
}

/// The result of checking one function: its errors (in site order), its
/// counted lock sites, and its published summary.
pub(crate) struct FunOutcome {
    pub errors: Vec<LockError>,
    pub sites: usize,
    pub summary: Arc<Summary>,
}

/// Checks one function against the context and the summaries its
/// schedule dependencies have already published.
pub(crate) fn check_function(
    cx: &CheckContext<'_>,
    summaries: &Summaries,
    f: &FunDef,
) -> FunOutcome {
    let _span = obs::span!("cqual.function");
    let _hist = obs::hist_timer!(obs::Hist::CheckFunction);
    obs::count(obs::Counter::CqualFunctionsChecked, 1);
    let caller = cx
        .graph
        .node(&f.name.name)
        .expect("checked function is defined");
    let mut fc = FunctionChecker {
        cx,
        summaries,
        caller,
        current_fun: f.name.name.to_string(),
        errors: Vec::new(),
        sites: 0,
        recording: true,
        req_sink: Some(ReqSink::default()),
        loop_stack: Vec::new(),
        return_store: Store::bottom(),
    };
    let mut store = Store::new();
    fc.block(&f.body, &mut store);
    let sink = fc.req_sink.take().expect("sink");

    // The function's exit state is the join of its fall-through state
    // and every early return.
    store.join(&fc.return_store);
    let out = store.iter().collect();
    obs::count(obs::Counter::CqualLockSites, fc.sites as u64);
    obs::count(obs::Counter::CqualErrors, fc.errors.len() as u64);
    FunOutcome {
        errors: fc.errors,
        sites: fc.sites,
        summary: Arc::new(Summary {
            first_req: sink.reqs,
            out,
            havocked: store.is_havocked(),
        }),
    }
}

/// Break/continue accumulators for one loop.
#[derive(Debug, Default)]
struct LoopExits {
    breaks: Store,
    continues: Store,
}

impl LoopExits {
    fn new() -> Self {
        LoopExits {
            breaks: Store::bottom(),
            continues: Store::bottom(),
        }
    }
}

/// The summary-requirement collector threaded through function analysis.
#[derive(Debug, Default)]
struct ReqSink {
    reqs: Vec<(Loc, LockState, LockOp)>,
    seen: FxHashSet<Loc>,
}

/// Walks one function body, tracking the abstract store. All shared
/// inputs are behind `&` — only the per-function bookkeeping is mutable.
struct FunctionChecker<'c, 'a> {
    cx: &'c CheckContext<'a>,
    summaries: &'c Summaries,
    /// This function's call-graph node.
    caller: usize,
    current_fun: String,
    errors: Vec<LockError>,
    sites: usize,
    recording: bool,
    req_sink: Option<ReqSink>,
    /// Break/continue join points for each enclosing loop.
    loop_stack: Vec<LoopExits>,
    /// Join of the stores at every `return` in the current function.
    return_store: Store,
}

impl FunctionChecker<'_, '_> {
    fn copy_in(&mut self, store: &mut Store, rho: Loc, rho_p: Loc) {
        let rho = self.cx.frozen.find(rho);
        let rho_p = self.cx.frozen.find(rho_p);
        if rho == rho_p {
            return; // demoted candidate — nothing to transfer
        }
        store.set(rho_p, store.state(rho));
    }

    fn copy_out(&mut self, store: &mut Store, rho: Loc, rho_p: Loc) {
        let rho = self.cx.frozen.find(rho);
        let rho_p = self.cx.frozen.find(rho_p);
        if rho == rho_p {
            return;
        }
        let strong = self.strong(rho);
        store.update(rho, store.state(rho_p), strong);
    }

    fn strong(&self, loc: Loc) -> bool {
        match self.cx.mode {
            Mode::AllStrong => true,
            _ => self.cx.frozen.strong_updatable(loc),
        }
    }

    fn block(&mut self, b: &Block, store: &mut Store) {
        let scopes: Vec<RangeScope> = self.cx.range_scopes.get(&b.id).cloned().unwrap_or_default();
        let mut decl_scopes: Vec<(Loc, Loc)> = Vec::new();
        for (i, s) in b.stmts.iter().enumerate() {
            for sc in scopes.iter().filter(|sc| sc.start == i) {
                self.copy_in(store, sc.rho, sc.rho_p);
            }
            self.stmt(s, store, &mut decl_scopes);
            // Inner scopes (larger start) copy out first.
            let mut ending: Vec<&RangeScope> = scopes.iter().filter(|sc| sc.end == i).collect();
            ending.sort_by_key(|sc| std::cmp::Reverse(sc.start));
            for sc in ending {
                self.copy_out(store, sc.rho, sc.rho_p);
            }
        }
        // Declaration-restrict scopes end with the block, innermost first.
        for &(rho, rho_p) in decl_scopes.iter().rev() {
            self.copy_out(store, rho, rho_p);
        }
    }

    fn stmt(&mut self, s: &Stmt, store: &mut Store, decl_scopes: &mut Vec<(Loc, Loc)>) {
        match &s.kind {
            StmtKind::Expr(e) => self.expr(e, store),
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    self.expr(e, store);
                }
                if let Some(&(rho, rho_p)) = self.cx.stmt_scopes.get(&s.id) {
                    self.copy_in(store, rho, rho_p);
                    decl_scopes.push((rho, rho_p));
                }
            }
            StmtKind::Restrict { init, body, .. } => {
                self.expr(init, store);
                let scope = self.cx.stmt_scopes.get(&s.id).copied();
                if let Some((rho, rho_p)) = scope {
                    self.copy_in(store, rho, rho_p);
                }
                self.block(body, store);
                if let Some((rho, rho_p)) = scope {
                    self.copy_out(store, rho, rho_p);
                }
            }
            StmtKind::Confine { expr, body } => {
                self.expr(expr, store);
                let scope = self.cx.stmt_scopes.get(&s.id).copied();
                if let Some((rho, rho_p)) = scope {
                    self.copy_in(store, rho, rho_p);
                }
                self.block(body, store);
                if let Some((rho, rho_p)) = scope {
                    self.copy_out(store, rho, rho_p);
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond, store);
                let mut then_store = store.clone();
                self.block(then_blk, &mut then_store);
                match else_blk {
                    Some(e) => {
                        let mut else_store = store.clone();
                        self.block(e, &mut else_store);
                        then_store.join(&else_store);
                    }
                    None => then_store.join(store),
                }
                *store = then_store;
            }
            StmtKind::While { cond, body, step } => {
                // Fixpoint without recording, then one recording pass
                // from the stabilized loop-head store. `continue` joins
                // back before the step (C `for` semantics); `break` joins
                // into the loop's exit.
                let was_recording = self.recording;
                self.recording = false;
                let mut head = store.clone();
                loop {
                    let mut iter_store = head.clone();
                    self.expr(cond, &mut iter_store);
                    self.loop_stack.push(LoopExits::new());
                    self.block(body, &mut iter_store);
                    let exits = self.loop_stack.pop().expect("loop exits");
                    // The step runs on both normal completion and
                    // continue.
                    iter_store.join(&exits.continues);
                    if let Some(step) = step {
                        self.expr(step, &mut iter_store);
                    }
                    let mut next = head.clone();
                    next.join(&iter_store);
                    if next == head {
                        break;
                    }
                    head = next;
                }
                self.recording = was_recording;
                let mut exit_store = head.clone();
                self.expr(cond, &mut exit_store);
                let mut body_store = exit_store.clone();
                self.loop_stack.push(LoopExits::new());
                self.block(body, &mut body_store);
                let exits = self.loop_stack.pop().expect("loop exits");
                body_store.join(&exits.continues);
                if let Some(step) = step {
                    self.expr(step, &mut body_store);
                }
                exit_store.join(&exits.breaks);
                *store = exit_store;
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.expr(e, store);
                }
                self.return_store.join(store);
                store.mark_unreachable();
            }
            StmtKind::Break => {
                match self.loop_stack.last_mut() {
                    Some(top) => top.breaks.join(store),
                    // break outside a loop: the path simply ends.
                    None => self.return_store.join(store),
                }
                store.mark_unreachable();
            }
            StmtKind::Continue => {
                match self.loop_stack.last_mut() {
                    Some(top) => top.continues.join(store),
                    None => self.return_store.join(store),
                }
                store.mark_unreachable();
            }
            StmtKind::Block(b) => self.block(b, store),
        }
    }

    fn expr(&mut self, e: &Expr, store: &mut Store) {
        match &e.kind {
            ExprKind::Int(_) | ExprKind::Var(_) => {}
            ExprKind::Unary(_, a) | ExprKind::New(a) | ExprKind::Cast(_, a) => self.expr(a, store),
            ExprKind::Binary(_, a, b) | ExprKind::Assign(a, b) | ExprKind::Index(a, b) => {
                self.expr(a, store);
                self.expr(b, store);
            }
            ExprKind::Field(a, _) | ExprKind::Arrow(a, _) => self.expr(a, store),
            ExprKind::Call(f, args) => {
                for a in args {
                    self.expr(a, store);
                }
                self.call(e.id, &f.name, args, store);
            }
        }
    }

    fn require(&mut self, store: &Store, loc: Loc, required: LockState, op: LockOp, site: NodeId) {
        // Record a summary requirement on first touch.
        if let Some(sink) = &mut self.req_sink {
            if !store.touched(loc) && sink.seen.insert(loc) {
                sink.reqs.push((loc, required, op));
            }
        }
        if self.recording {
            let found = store.state(loc);
            if !found.verifies(required) {
                self.errors.push(LockError {
                    site,
                    op,
                    found,
                    fun: self.current_fun.clone(),
                });
            }
        }
    }

    fn call(&mut self, site: NodeId, callee: &str, args: &[Expr], store: &mut Store) {
        if intrinsics::is_change_type(callee) {
            let (required, new, op) = match callee {
                intrinsics::SPIN_LOCK => (LockState::Unlocked, LockState::Locked, LockOp::Acquire),
                intrinsics::SPIN_UNLOCK => {
                    (LockState::Locked, LockState::Unlocked, LockOp::Release)
                }
                _ => {
                    // Generic change_type: no requirement, unknown result.
                    for a in args {
                        if let Some(loc) = self.arg_pointee(a) {
                            store.update(loc, LockState::Top, false);
                        }
                    }
                    return;
                }
            };
            if self.recording {
                self.sites += 1;
            }
            let Some(arg) = args.first() else { return };
            let Some(loc) = self.arg_pointee(arg) else {
                return;
            };
            self.require(store, loc, required, op, site);
            let strong = self.strong(loc);
            store.update(loc, new, strong);
            return;
        }

        // Defined function: apply its summary if the schedule has already
        // published it. The schedule gate (not map presence) keeps the
        // parallel checker faithful to the sequential one: in a parallel
        // run a later-scheduled cyclic callee's summary may already exist,
        // but the sequential checker would not have seen it yet.
        let Some(c) = self.cx.graph.node(callee) else {
            return; // extern/undefined: no interprocedural effect
        };
        if !self.cx.graph.uses_summary(self.caller, c) {
            if self.cx.graph.is_cyclic(c) {
                store.havoc();
            }
            return;
        }
        let sum = self
            .summaries
            .get(callee)
            .cloned()
            .expect("dependency summary published before caller is checked");
        let map = self.retarget_map(c, args);
        for (loc, required, _op) in &sum.first_req {
            let target = retarget(&map, self.cx.frozen, *loc);
            self.require(store, target, *required, LockOp::CallRequirement, site);
        }
        // A havocked callee reached an unanalyzed cyclic call on some
        // path: its `out` covers only the locations it mentioned, so
        // everything else must drop to unknown here too — *before* the
        // explicit exit states are applied on top.
        if sum.havocked {
            store.havoc();
        }
        for (loc, out_state) in &sum.out {
            let target = retarget(&map, self.cx.frozen, *loc);
            let strong = self.strong(target);
            store.update(target, *out_state, strong);
        }
    }

    /// Maps a callee's restrict-parameter `ρ'` locations to the actual
    /// arguments' pointee locations at this call site.
    fn retarget_map(&mut self, callee: usize, args: &[Expr]) -> FxHashMap<Loc, Loc> {
        let mut map = FxHashMap::default();
        let infos = self.cx.params[callee].clone();
        for (info, arg) in infos.iter().zip(args) {
            if !info.restrict {
                continue;
            }
            let Some(rho_p) = info.rho_p else { continue };
            if let Some(target) = self.arg_pointee(arg) {
                map.insert(self.cx.frozen.find(rho_p), target);
            }
        }
        map
    }

    /// The canonical pointee location of a pointer-valued argument.
    fn arg_pointee(&mut self, arg: &Expr) -> Option<Loc> {
        match self.cx.state.expr_ty.get(arg.id.index())?.as_ref()? {
            Ty::Ref(l) => Some(self.cx.frozen.find(*l)),
            _ => None,
        }
    }
}
