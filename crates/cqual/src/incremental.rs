//! Function-granular incremental recheck: edit-to-report latency far
//! below a full-module recheck.
//!
//! An [`IncrementalSession`] repeatedly analyzes successive versions of
//! *one* module (the `localias watch` workload). Each call re-runs the
//! cheap module-level phases (parse, alias analysis, confine inference —
//! those stay whole-module), then replays the checker's wave schedule
//! *incrementally*: a function is re-checked only if it is **dirty**
//! (its canonical item text changed, or its static context — callee set,
//! scopes, parameters — changed) or sits in the **summary-change cone**
//! of a dirty function (a re-checked callee whose summary or interface
//! differs from the cached one dirties its callers, transitively; SCCs
//! dirty as a unit). Everything else is served from the per-module
//! function cache: cached errors (stored with item-relative sites, so
//! they survive node-id shifts) and the cached summary, translated into
//! the new run's location space.
//!
//! # Location translation
//!
//! Cached facts speak in the previous run's canonical [`Loc`]
//! representatives, which are not stable across runs: re-analyzing a
//! textually different module allocates and unifies locations in a
//! different order. The session therefore *anchors* location classes to
//! stable structural names — global/local variable storage and pointee
//! chains, struct fields, function signatures, confine/restrict scope
//! outcomes — and joins the previous and current anchor tables on their
//! keys to build a previous→current representative map. Keys derived
//! from a function's own body embed that function's item fingerprint, so
//! an edited function never contributes (possibly lying) anchors.
//! The map is pruned to a partial *bijection* with matching
//! strong-updatability on both sides: any previous representative that
//! maps to two current ones, shares a current one with another previous
//! representative, or flips its strong-update bit is dropped, and every
//! cached fact mentioning a dropped representative fails translation —
//! making its function dirty. Conservatism is therefore self-repairing:
//! whatever the anchors cannot prove unchanged gets re-checked.
//!
//! Every location a function's checker run can observe appears in its
//! cached artifacts or static signature (touched locations in the
//! summary's `out`, read-required ones in `first_req`, scope and
//! parameter locations in the signature), so a function whose artifacts
//! fully translate under the bijection sees checker inputs isomorphic to
//! its previous run — the replayed outcome is byte-identical to a fresh
//! one. This is additionally pinned by tests here and asserted per
//! iteration by the `watch` bench bin.
//!
//! Non-function items (globals, structs, externs) and the function *name
//! sequence* form the module **prelude**; any prelude change falls back
//! to a full recheck (everything dirty). A byte-identical source is
//! answered from the cached reports without even parsing.

use crate::callgraph::CallGraph;
use crate::flow::{check_wave_parallel, resolve_jobs, Mode};
use crate::fx::{FxHashMap, FxHashSet};
use crate::intra::{check_function, CheckContext, FunOutcome};
use crate::report::{LockError, LockReport};
use crate::summary::{Summaries, Summary};
use localias_alias::{FrozenLocs, Loc, Ty, VarKind};
use localias_ast::{fp, parse_module, pretty, FunDef, ItemKind, Module, NodeId, ParseError};
use localias_core::{Analysis, ConfineSite, SharedAnalysis};
use localias_obs as obs;
use std::collections::hash_map::Entry;
use std::sync::Arc;
use std::time::Instant;

/// Previous-run → current-run canonical representative map, dense over
/// the previous run's location indices ([`Loc`] is a small dense index,
/// so translation is an array read rather than a hash lookup).
struct LocMap {
    map: Vec<Option<Loc>>,
    /// Every mapped location maps to itself — the edit left the global
    /// allocation order untouched (the common single-function-edit case
    /// when the body's location count is unchanged), so translated
    /// artifacts can be reused without rebuilding.
    identity: bool,
}

impl LocMap {
    #[inline]
    fn get(&self, l: Loc) -> Option<Loc> {
        self.map.get(l.index()).copied().flatten()
    }
}

/// The three experiment modes, in report order (matching the corpus
/// `Expected` triple: no-confine, confine, all-strong).
pub const MODES: [Mode; 3] = [Mode::NoConfine, Mode::Confine, Mode::AllStrong];

/// Execution statistics of one [`IncrementalSession::analyze`] call.
///
/// "Slots" count function×mode pairs: each defined function is checked
/// once per mode, so `slots == functions * 3` and
/// `rechecked + hits == slots` (except on a whole-module no-op hit,
/// where everything is a hit without per-function work).
#[derive(Debug, Clone, Default)]
pub struct IncrStats {
    /// Defined functions in the module.
    pub functions: usize,
    /// Function×mode slots this run had to account for.
    pub slots: usize,
    /// Slots actually re-checked (dirty functions plus their cone).
    pub rechecked: usize,
    /// Slots served from the function cache.
    pub hits: usize,
    /// Re-checked slots whose summary differed from the cached one.
    pub summary_changes: usize,
    /// The raw source was byte-identical: reports served without parsing.
    pub module_hit: bool,
    /// A previous state existed but the module prelude changed, forcing
    /// a full recheck.
    pub full_fallback: bool,
    /// No previous state existed (first analysis in the session).
    pub cold: bool,
    /// Wall-clock seconds parsing.
    pub parse_seconds: f64,
    /// Wall-clock seconds in the module-level analyses (alias + confine
    /// inference) and anchor extraction.
    pub analysis_seconds: f64,
    /// Wall-clock seconds in the three incremental check passes — the
    /// phase the function cache accelerates.
    pub check_seconds: f64,
    /// Wall-clock seconds for the whole call.
    pub total_seconds: f64,
}

/// The result of one incremental analysis: the three mode reports (in
/// [`MODES`] order) and the run's statistics.
#[derive(Debug, Clone)]
pub struct IncrOutcome {
    /// Per-mode lock reports, byte-identical to from-scratch checking.
    pub reports: [LockReport; 3],
    /// What the incremental engine did to produce them.
    pub stats: IncrStats,
}

// ---------------------------------------------------------------------
// Item index: per-item fingerprints, id ranges, and the module prelude.
// ---------------------------------------------------------------------

/// One defined function's identity in the current parse.
struct FunItem {
    /// Domain-separated fingerprint of the item's canonical text.
    fp: u128,
    /// First node id allocated inside the item (inclusive).
    base: u32,
}

/// Per-parse index of the module's items.
///
/// The parser allocates node ids monotonically and constructs each item
/// node *after* its children, so the ids of item `k` are exactly the
/// contiguous range `(root id of item k-1, root id of item k]`. That
/// contiguity is what lets cached error sites be stored item-relative
/// (`site - base`) and survive edits that shift later items' ids.
struct ItemIndex {
    /// Fingerprint of the prelude: every non-function item's canonical
    /// text plus the sequence of function *names* (bodies excluded).
    prelude_fp: u128,
    /// Defined functions by name (for duplicates, the later definition
    /// wins — matching the checker's name-keyed function map).
    funs: FxHashMap<String, FunItem>,
    /// `(base, root, name)` per function item, sorted by `base`, for
    /// node-id → owning-function lookup.
    ranges: Vec<(u32, u32, String)>,
    /// Function names defined more than once (never cache-eligible).
    dups: FxHashSet<String>,
}

impl ItemIndex {
    fn build(m: &Module) -> ItemIndex {
        let item_domain = format!("incr-item;v{};", fp::ANALYSIS_VERSION);
        let prelude_domain = format!("incr-prelude;v{};", fp::ANALYSIS_VERSION);
        let mut prelude = String::new();
        let mut funs = FxHashMap::default();
        let mut ranges = Vec::new();
        let mut dups = FxHashSet::default();
        let mut base = 0u32;
        for item in &m.items {
            let root = match &item.kind {
                ItemKind::Struct(s) => s.id.0,
                ItemKind::Global(g) => g.id.0,
                ItemKind::Extern(e) => e.id.0,
                ItemKind::Fun(f) => f.id.0,
            };
            if let ItemKind::Fun(f) = &item.kind {
                let ifp = fp::fingerprint(&item_domain, &pretty::print_item(item));
                let name = f.name.name.to_string();
                prelude.push_str("fun:");
                prelude.push_str(&name);
                prelude.push(';');
                if funs
                    .insert(name.clone(), FunItem { fp: ifp, base })
                    .is_some()
                {
                    dups.insert(name.clone());
                }
                ranges.push((base, root, name));
            } else {
                prelude.push_str(&pretty::print_item(item));
            }
            base = root + 1;
        }
        ItemIndex {
            prelude_fp: fp::fingerprint(&prelude_domain, &prelude),
            funs,
            ranges,
            dups,
        }
    }

    /// The function item whose id range contains `id`, with its base.
    fn owner_of(&self, id: NodeId) -> Option<(&str, u32)> {
        let i = self.ranges.partition_point(|&(_, root, _)| root < id.0);
        let (base, root, name) = self.ranges.get(i)?;
        (*base <= id.0 && id.0 <= *root).then_some((name.as_str(), *base))
    }

    /// A stable per-function anchor tag: the name plus the item
    /// fingerprint for defined functions (so an edited function's
    /// body-derived anchors never join across the edit), or `name:ext`
    /// for extern/undefined ones (gated by the prelude instead).
    fn fun_tag(&self, name: &str) -> String {
        match self.funs.get(name) {
            Some(fi) => format!("{name}:{:032x}", fi.fp),
            None => format!("{name}:ext"),
        }
    }
}

// ---------------------------------------------------------------------
// Anchors: stable structural names for location classes.
// ---------------------------------------------------------------------

/// Anchor key → (canonical representative, strong-updatable bit).
type Anchors = FxHashMap<String, (Loc, bool)>;

struct AnchorBuilder<'a> {
    analysis: &'a Analysis,
    frozen: &'a FrozenLocs,
    map: Anchors,
    /// Keys that resolved to two different representatives — ambiguous,
    /// so they contribute nothing (in either direction).
    poisoned: FxHashSet<String>,
}

/// Longest pointee chain an anchor follows (`x`, `*x`, `**x`, …). Bounds
/// the walk on cyclic content types; deeper structure simply goes
/// unanchored (conservatively dirtying whoever depends on it).
const CHAIN_DEPTH: usize = 6;

impl AnchorBuilder<'_> {
    fn add(&mut self, key: String, loc: Loc) {
        if self.poisoned.contains(&key) {
            return;
        }
        let rep = self.frozen.find(loc);
        let strong = self.frozen.strong_updatable(rep);
        match self.map.entry(key) {
            Entry::Occupied(e) => {
                if e.get().0 != rep {
                    let (key, _) = e.remove_entry();
                    self.poisoned.insert(key);
                }
            }
            Entry::Vacant(e) => {
                e.insert((rep, strong));
            }
        }
    }

    /// Anchors the pointee chain hanging off `start`'s content:
    /// `{prefix}*`, `{prefix}**`, … for as long as the content types keep
    /// dereferencing.
    fn chain(&mut self, prefix: &str, start: Loc) {
        let mut key = prefix.to_string();
        let mut cur = start;
        for _ in 0..CHAIN_DEPTH {
            match self.analysis.state.locs.content_const(cur) {
                Ty::Ref(next) => {
                    let next = *next;
                    key.push('*');
                    self.add(key.clone(), next);
                    cur = next;
                }
                _ => break,
            }
        }
    }

    /// Anchors a value type: if it is a pointer, `{prefix}*` names the
    /// pointee and the chain continues from there.
    fn value(&mut self, prefix: &str, ty: &Ty) {
        if let Ty::Ref(p) = ty {
            let key = format!("{prefix}*");
            self.add(key.clone(), *p);
            self.chain(&key, *p);
        }
    }
}

/// Extracts the anchor table of one (frozen) analysis.
fn build_anchors(analysis: &Analysis, frozen: &FrozenLocs, items: &ItemIndex) -> Anchors {
    let mut b = AnchorBuilder {
        analysis,
        frozen,
        map: Anchors::default(),
        poisoned: FxHashSet::default(),
    };

    // Variables: storage location (if addressed) plus the value's pointee
    // chain. Shadowed same-named bindings are disambiguated by their
    // (deterministic, program-order) occurrence index.
    let mut occ: FxHashMap<(String, String), usize> = FxHashMap::default();
    for v in &analysis.state.vars {
        let fun_key = v.fun.clone().unwrap_or_default();
        let fun_tag = match &v.fun {
            Some(f) => items.fun_tag(f),
            None => String::new(),
        };
        let k = occ.entry((fun_key, v.name.clone())).or_insert(0);
        let prefix = format!("v:{fun_tag}:{}#{k}", v.name);
        *k += 1;
        if let VarKind::Addressed(l) = v.kind {
            let key = format!("{prefix}@");
            b.add(key.clone(), l);
            b.chain(&key, l);
        }
        b.value(&prefix, &v.ty);
    }

    // Struct fields: `(struct, field)` keys are globally unique.
    for ((s, f), &l) in &analysis.state.fields {
        let key = format!("f:{s}.{f}@");
        b.add(key.clone(), l);
        b.chain(&key, l);
    }

    // Function signatures: parameter and return pointee chains.
    for (name, sig) in &analysis.state.funs {
        let tag = items.fun_tag(name);
        for (i, ty) in sig.params.iter().enumerate() {
            b.value(&format!("s:{tag}:{i}"), ty);
        }
        b.value(&format!("s:{tag}:r"), &sig.ret);
    }

    // Confine outcomes: `(ρ, ρ')` keyed by the owning function's tag and
    // the item-relative site.
    for c in &analysis.confines {
        let Some((rho, rho_p)) = c.locs else { continue };
        let site_id = match c.site {
            ConfineSite::Range { block, .. } => block,
            ConfineSite::Stmt(at) => at,
        };
        let Some((owner, base)) = items.owner_of(site_id) else {
            continue;
        };
        let tag = items.fun_tag(owner);
        let key = match c.site {
            ConfineSite::Range { block, start, end } => {
                format!("c:{tag}:{}:{start}:{end}", block.0 - base)
            }
            ConfineSite::Stmt(at) => format!("cs:{tag}:{}", at.0 - base),
        };
        b.add(format!("{key}:r"), rho);
        b.add(format!("{key}:p"), rho_p);
    }

    // Restrict outcomes and let-or-restrict candidates, same keying.
    for r in &analysis.restricts {
        let Some((rho, rho_p)) = r.locs else { continue };
        let Some((owner, base)) = items.owner_of(r.at) else {
            continue;
        };
        let key = format!("r:{}:{}:{}", items.fun_tag(owner), r.at.0 - base, r.name);
        b.add(format!("{key}:r"), rho);
        b.add(format!("{key}:p"), rho_p);
    }
    for c in &analysis.candidates {
        let Some((rho, rho_p)) = c.locs else { continue };
        let Some((owner, base)) = items.owner_of(c.at) else {
            continue;
        };
        let key = format!("d:{}:{}:{}", items.fun_tag(owner), c.at.0 - base, c.name);
        b.add(format!("{key}:r"), rho);
        b.add(format!("{key}:p"), rho_p);
    }

    b.map
}

/// Joins two anchor tables into a previous→current representative map,
/// pruned to a partial bijection with matching strong-update bits.
///
/// The prune is a symmetric property of the key join (not of iteration
/// order): a previous representative is dropped iff some pair of its
/// keys disagrees on the target, some other previous representative
/// shares a target with it, or any of its keys flips the
/// strong-updatable bit.
fn build_locmap(prev: &Anchors, new: &Anchors) -> LocMap {
    let pmax = prev
        .values()
        .map(|&(l, _)| l.index() + 1)
        .max()
        .unwrap_or(0);
    let nmax = new.values().map(|&(l, _)| l.index() + 1).max().unwrap_or(0);
    let mut fwd: Vec<Option<Loc>> = vec![None; pmax];
    let mut bwd: Vec<Option<Loc>> = vec![None; nmax];
    let mut bad = vec![false; pmax];
    for (key, &(p, p_strong)) in prev {
        let Some(&(n, n_strong)) = new.get(key) else {
            continue;
        };
        if p_strong != n_strong {
            bad[p.index()] = true;
            continue;
        }
        match fwd[p.index()] {
            Some(existing) => {
                if existing != n {
                    bad[p.index()] = true;
                }
            }
            None => {
                fwd[p.index()] = Some(n);
                match bwd[n.index()] {
                    Some(other) => {
                        bad[p.index()] = true;
                        bad[other.index()] = true;
                    }
                    None => bwd[n.index()] = Some(p),
                }
            }
        }
    }
    let mut identity = true;
    for (i, slot) in fwd.iter_mut().enumerate() {
        if bad[i] {
            *slot = None;
        } else if let Some(n) = *slot {
            identity &= n.index() == i;
        }
    }
    LocMap { map: fwd, identity }
}

// ---------------------------------------------------------------------
// Static signatures: everything but the body text and callee summaries.
// ---------------------------------------------------------------------

/// How a call from the signature's owner to one callee resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepKind {
    /// The callee's published summary is applied (schedule-ordered dep).
    Summary,
    /// The callee is cyclic and scheduled later: the call havocs.
    Havoc,
    /// Acyclic later-scheduled callee: the call has no effect.
    NoEffect,
}

/// The confine/restrict scopes owned by one function, item-relative.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct ScopeSig {
    /// `(block - base, start, end, ρ, ρ')` per range scope.
    ranges: Vec<(u32, usize, usize, Loc, Loc)>,
    /// `(stmt - base, ρ, ρ')` per statement scope.
    stmts: Vec<(u32, Loc, Loc)>,
}

/// The graph-derived half of a function's static signature — a function
/// of the module alone, so one computation serves all three modes.
#[derive(Debug, PartialEq, Eq)]
struct GraphSig {
    /// Per-callee resolution kinds, in callee order.
    deps: Vec<(String, DepKind)>,
    /// `(is_cyclic, is_self_recursive)` of the owner itself.
    cyclic: (bool, bool),
}

/// Everything a function's check reads besides its own body and its
/// callees' summaries. Two runs in which a function's item fingerprint
/// and (translated) static signature agree — and whose consumed callee
/// summaries agree — produce identical outcomes for it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StaticSig {
    /// How the function sits in the call graph (shared across modes).
    graph: Arc<GraphSig>,
    /// Scopes the checker copies lock state across.
    scope: ScopeSig,
    /// `(ρ' pointee, restrict)` per parameter — the owner's *interface*:
    /// callers build their retarget maps from this.
    params: Vec<(Option<Loc>, bool)>,
}

/// Computes every function's graph signature, once per analyzed module.
fn compute_graph_sigs(graph: &CallGraph) -> Vec<Arc<GraphSig>> {
    (0..graph.len())
        .map(|v| {
            let deps = graph
                .callees(v)
                .iter()
                .map(|&c| {
                    let kind = if graph.uses_summary(v, c) {
                        DepKind::Summary
                    } else if graph.is_cyclic(c) {
                        DepKind::Havoc
                    } else {
                        DepKind::NoEffect
                    };
                    (graph.name(c).to_string(), kind)
                })
                .collect();
            Arc::new(GraphSig {
                deps,
                cyclic: (graph.is_cyclic(v), graph.is_self_recursive(v)),
            })
        })
        .collect()
}

/// Computes every function's static signature for one analysis's
/// context. Signatures are mode-independent (the mode only gates checker
/// behaviour), so one computation serves every mode sharing the
/// analysis — `NoConfine` and `AllStrong` consume the same vector.
fn compute_sigs(
    cx: &CheckContext<'_>,
    items: &ItemIndex,
    graph_sigs: &[Arc<GraphSig>],
) -> Vec<Arc<StaticSig>> {
    let _span = obs::span!("incr.mode_sigs");
    let mut sigs: Vec<StaticSig> = graph_sigs
        .iter()
        .map(|g| StaticSig {
            graph: g.clone(),
            scope: ScopeSig::default(),
            params: Vec::new(),
        })
        .collect();
    for (v, sig) in sigs.iter_mut().enumerate() {
        sig.params = cx.params[v]
            .iter()
            .map(|i| (i.rho_p.map(|l| cx.frozen.find(l)), i.restrict))
            .collect();
    }
    let node_of = |id: NodeId| -> Option<(usize, u32)> {
        let (owner, base) = items.owner_of(id)?;
        Some((cx.graph.node(owner)?, base))
    };
    for (&block, scopes) in &cx.range_scopes {
        let Some((v, base)) = node_of(block) else {
            continue;
        };
        for sc in scopes {
            sigs[v].scope.ranges.push((
                block.0 - base,
                sc.start,
                sc.end,
                cx.frozen.find(sc.rho),
                cx.frozen.find(sc.rho_p),
            ));
        }
    }
    for (&at, &(rho, rho_p)) in &cx.stmt_scopes {
        let Some((v, base)) = node_of(at) else {
            continue;
        };
        sigs[v]
            .scope
            .stmts
            .push((at.0 - base, cx.frozen.find(rho), cx.frozen.find(rho_p)));
    }
    for sig in &mut sigs {
        sig.scope.ranges.sort_unstable();
        sig.scope.stmts.sort_unstable();
    }
    sigs.into_iter().map(Arc::new).collect()
}

// -- translation helpers ----------------------------------------------

#[inline]
fn tr_loc(map: &LocMap, l: Loc) -> Option<Loc> {
    map.get(l)
}

fn tr_summary(map: &LocMap, s: &Arc<Summary>) -> Option<Arc<Summary>> {
    if map.identity {
        // Every location is its own counterpart; the summary only fails
        // to translate if a location fell out of the map entirely.
        let ok = s.first_req.iter().all(|&(l, _, _)| map.get(l).is_some())
            && s.out.iter().all(|&(l, _)| map.get(l).is_some());
        return ok.then(|| s.clone());
    }
    let mut first_req = Vec::with_capacity(s.first_req.len());
    for &(l, st, op) in &s.first_req {
        first_req.push((tr_loc(map, l)?, st, op));
    }
    let mut out = Vec::with_capacity(s.out.len());
    for &(l, st) in &s.out {
        out.push((tr_loc(map, l)?, st));
    }
    // `out` is canonically sorted by location in each run's own space.
    out.sort_unstable_by_key(|&(l, _)| l);
    Some(Arc::new(Summary {
        first_req,
        out,
        havocked: s.havocked,
    }))
}

/// Compares a cached parameter interface (translated) against the
/// current one without materializing the translation. `None` means a
/// cached location no longer translates (treated as changed).
fn tr_params_eq(
    map: &LocMap,
    prev: &[(Option<Loc>, bool)],
    new: &[(Option<Loc>, bool)],
) -> Option<bool> {
    if prev.len() != new.len() {
        return Some(false);
    }
    for (&(pl, pr), &(nl, nr)) in prev.iter().zip(new) {
        if pr != nr {
            return Some(false);
        }
        match (pl, nl) {
            (None, None) => {}
            (Some(pl), Some(nl)) => {
                if tr_loc(map, pl)? != nl {
                    return Some(false);
                }
            }
            _ => return Some(false),
        }
    }
    Some(true)
}

fn tr_scope(map: &LocMap, s: &ScopeSig) -> Option<ScopeSig> {
    let mut ranges = s
        .ranges
        .iter()
        .map(|&(b, st, en, rho, rho_p)| Some((b, st, en, tr_loc(map, rho)?, tr_loc(map, rho_p)?)))
        .collect::<Option<Vec<_>>>()?;
    let mut stmts = s
        .stmts
        .iter()
        .map(|&(at, rho, rho_p)| Some((at, tr_loc(map, rho)?, tr_loc(map, rho_p)?)))
        .collect::<Option<Vec<_>>>()?;
    ranges.sort_unstable();
    stmts.sort_unstable();
    Some(ScopeSig { ranges, stmts })
}

/// Whether a cached scope signature, translated, equals the current one.
/// Singleton lists compare in place (translation can't reorder one
/// element); longer ones go through [`tr_scope`] for the canonical sort.
fn scope_matches(map: &LocMap, prev: &ScopeSig, new: &ScopeSig) -> bool {
    if prev.ranges.len() != new.ranges.len() || prev.stmts.len() != new.stmts.len() {
        return false;
    }
    if prev.ranges.len() > 1 || prev.stmts.len() > 1 {
        return tr_scope(map, prev).as_ref() == Some(new);
    }
    prev.ranges
        .iter()
        .zip(&new.ranges)
        .all(|(&(b, st, en, rho, rho_p), n)| {
            tr_loc(map, rho)
                .zip(tr_loc(map, rho_p))
                .is_some_and(|(rho, rho_p)| (b, st, en, rho, rho_p) == *n)
        })
        && prev
            .stmts
            .iter()
            .zip(&new.stmts)
            .all(|(&(at, rho, rho_p), n)| {
                tr_loc(map, rho)
                    .zip(tr_loc(map, rho_p))
                    .is_some_and(|(rho, rho_p)| (at, rho, rho_p) == *n)
            })
}

// ---------------------------------------------------------------------
// The per-mode function cache and incremental wave walk.
// ---------------------------------------------------------------------

/// One function's cached check artifacts, in the run-that-produced-them's
/// location space, with item-relative error sites.
struct CachedFun {
    /// Errors with `site` rebased to `site - item base`. Item-relative
    /// sites are stable across cache generations, so hit entries share
    /// one allocation with their predecessor.
    errors: Arc<Vec<LockError>>,
    /// Counted lock sites.
    sites: usize,
    /// The published summary.
    summary: Arc<Summary>,
    /// The static signature the artifacts were computed under.
    sig: Arc<StaticSig>,
}

/// Per-mode function cache of one module version, indexed by call-graph
/// node id. Node ids are indices into the *sorted function name list*,
/// which the prelude fingerprint pins — any change to the name sequence
/// forces a full fallback before the cache is consulted — so an id means
/// the same function in consecutive runs.
#[derive(Default)]
struct ModeCache {
    funs: Vec<Option<CachedFun>>,
}

/// The retained state between [`IncrementalSession::analyze`] calls.
struct PrevState {
    raw_fp: u128,
    prelude_fp: u128,
    fun_count: usize,
    base_anchors: Anchors,
    confine_anchors: Anchors,
    /// Item fingerprint per function name, for call-graph revalidation.
    item_fps: FxHashMap<String, u128>,
    /// The call graph and its signatures — functions of the name list
    /// and the callee edges only, so they survive any edit that leaves
    /// every function's callee set intact (verified per changed body).
    graph: Arc<CallGraph>,
    graph_sigs: Arc<Vec<Arc<GraphSig>>>,
    modes: [ModeCache; 3],
    reports: [LockReport; 3],
}

/// A previous cache entry translated into the current run's space. Holds
/// a borrow of the cache entry rather than cloned artifacts — a hit
/// copies nothing until the new cache is assembled.
struct Prior<'a> {
    entry: &'a CachedFun,
    summary: Option<Arc<Summary>>,
    /// Whether the cached interface (translated) equals the current one;
    /// `None` when the cached one no longer translates.
    iface_same: Option<bool>,
    clean: bool,
}

struct ModeRun {
    report: LockReport,
    cache: ModeCache,
    rechecked: usize,
    hits: usize,
    summary_changes: usize,
}

/// Runs one mode's check pass incrementally against the (optional)
/// previous cache and location map.
fn run_mode<'p>(
    cx: &CheckContext<'_>,
    by_name: &FxHashMap<&str, &FunDef>,
    threads: usize,
    items: &ItemIndex,
    sigs: &[Arc<StaticSig>],
    prev: Option<(&'p ModeCache, &LocMap, &[bool])>,
) -> ModeRun {
    let n = cx.graph.len();

    // Translate what the previous run knew into this run's space and
    // decide static cleanliness per function.
    let tr_span = obs::span!("incr.mode_translate");
    let mut prior: Vec<Option<Prior<'p>>> = (0..n).map(|_| None).collect();
    if let Some((cache, locmap, fp_same)) = prev {
        for (v, slot) in prior.iter_mut().enumerate() {
            let Some(e) = cache.funs.get(v).and_then(|e| e.as_ref()) else {
                continue;
            };
            // A location-free summary translates to itself: share the
            // cached allocation.
            let summary = if e.summary.first_req.is_empty() && e.summary.out.is_empty() {
                Some(e.summary.clone())
            } else {
                tr_summary(locmap, &e.summary)
            };
            // Graph signatures are `Arc`-shared across runs whenever the
            // call graph itself was revalidated and reused, making the
            // common case a pointer comparison.
            let graph_ok =
                Arc::ptr_eq(&e.sig.graph, &sigs[v].graph) || e.sig.graph == sigs[v].graph;
            let iface_same = tr_params_eq(locmap, &e.sig.params, &sigs[v].params);
            let clean = fp_same[v]
                && graph_ok
                && iface_same == Some(true)
                && scope_matches(locmap, &e.sig.scope, &sigs[v].scope)
                && summary.is_some();
            *slot = Some(Prior {
                entry: e,
                summary,
                iface_same,
                clean,
            });
        }
    }

    drop(tr_span);

    // Seed: statically unclean functions are dirty; SCCs dirty as a unit
    // (all members re-run with identical fixpoint context).
    let wave_span = obs::span!("incr.mode_waves");
    let mut dirty: Vec<bool> = prior
        .iter()
        .map(|p| !p.as_ref().is_some_and(|p| p.clean))
        .collect();
    for scc in cx.graph.sccs() {
        if scc.len() > 1 && scc.iter().any(|&v| dirty[v]) {
            for &v in scc {
                dirty[v] = true;
            }
        }
    }

    let mut summary_changed = vec![false; n];
    let mut iface_changed = vec![false; n];
    let mut outcomes: Vec<Option<FunOutcome>> = (0..n).map(|_| None).collect();
    // Set once a node's wave has completed; a processed node without an
    // outcome is a cache hit served from its prior.
    let mut processed = vec![false; n];
    let mut summaries: Summaries = Summaries::default();
    // Per-SCC recheck decisions, wave-stamped so one allocation serves
    // the whole walk.
    let mut group_stamp: Vec<u32> = vec![0; cx.graph.scc_count()];
    let mut group_run: Vec<bool> = vec![false; cx.graph.scc_count()];
    let (mut rechecked, mut hits, mut summary_changes) = (0usize, 0usize, 0usize);

    for (wave_no, wave) in cx.graph.waves().iter().enumerate() {
        let stamp = wave_no as u32 + 1;
        // Recheck decision per SCC group: a member is re-checked if any
        // member is dirty or consumes a changed earlier-wave summary or
        // interface. (Within-wave summary deps are exactly same-SCC
        // deps — two distinct SCCs in one wave cannot have an edge — and
        // those are covered by the group-wide decision.)
        for &v in wave {
            let scc = cx.graph.scc_of(v);
            if group_stamp[scc] != stamp {
                group_stamp[scc] = stamp;
                group_run[scc] = false;
            }
            if group_run[scc] {
                continue;
            }
            let cone =
                cx.graph.deps(v).iter().any(|&d| {
                    cx.graph.scc_of(d) != scc && (summary_changed[d] || iface_changed[d])
                });
            if dirty[v] || cone {
                group_run[scc] = true;
            }
        }
        let to_run: Vec<usize> = wave
            .iter()
            .copied()
            .filter(|&v| group_run[cx.graph.scc_of(v)])
            .collect();

        // Publish exactly the summaries this wave's checks can consume:
        // the re-checked functions' earlier-wave dependencies. The full
        // checker's map holds *all* earlier waves at this point, but a
        // check only ever reads its own summary deps, and a same-wave
        // (same-SCC) dep is absent from both maps — so every lookup
        // resolves identically. An unprocessed dep is same-wave by the
        // SCC argument above.
        for &v in &to_run {
            for &d in cx.graph.deps(v) {
                let name = cx.graph.name(d);
                if summaries.contains_key(name) {
                    continue;
                }
                if let Some(out) = &outcomes[d] {
                    summaries.insert(name.to_string(), out.summary.clone());
                } else if processed[d] {
                    let p = prior[d].as_ref().expect("processed hit has a prior");
                    let s = p.summary.clone().expect("clean function has a summary");
                    summaries.insert(name.to_string(), s);
                }
            }
        }

        if threads <= 1 || to_run.len() <= 1 {
            for &v in &to_run {
                if let Some(f) = by_name.get(cx.graph.name(v)) {
                    outcomes[v] = Some(check_function(cx, &summaries, f));
                }
            }
        } else {
            for (v, out, _secs) in check_wave_parallel(cx, &summaries, by_name, &to_run, threads) {
                outcomes[v] = Some(out);
            }
        }
        rechecked += to_run.len();
        hits += wave.len() - to_run.len();

        for &v in wave {
            processed[v] = true;
            if !group_run[cx.graph.scc_of(v)] {
                continue;
            }
            let Some(out) = outcomes[v].as_ref() else {
                continue;
            };
            let p = prior[v].as_ref();
            summary_changed[v] = match p.and_then(|p| p.summary.as_ref()) {
                Some(t) => **t != *out.summary,
                None => true,
            };
            // The *stat* only counts divergence from an actually
            // cached summary — a cold run changes nothing.
            if summary_changed[v] && p.is_some_and(|p| p.summary.is_some()) {
                summary_changes += 1;
            }
            iface_changed[v] = !matches!(p.and_then(|p| p.iface_same), Some(true));
        }
    }

    drop(wave_span);

    // Assemble the report in schedule order (byte-identical to the full
    // checker at any thread count) — hit errors are un-rebased into the
    // current parse's id space on the way — then fold everything into
    // the new cache, where a hit entry inherits its predecessor's
    // (unchanged) item-relative error allocation outright.
    let finish_span = obs::span!("incr.mode_finish");
    let mut report = LockReport::default();
    for &v in cx.graph.order() {
        if let Some(out) = &outcomes[v] {
            report.errors.extend(out.errors.iter().cloned());
            report.sites += out.sites;
        } else if let Some(p) = prior[v].as_ref().filter(|p| p.clean) {
            if !p.entry.errors.is_empty() {
                let base = items.funs[cx.graph.name(v)].base;
                report
                    .errors
                    .extend(p.entry.errors.iter().map(|e| LockError {
                        site: NodeId(e.site.0 + base),
                        ..e.clone()
                    }));
            }
            report.sites += p.entry.sites;
        }
    }
    let no_errors: Arc<Vec<LockError>> = Arc::new(Vec::new());
    let mut cache = ModeCache {
        funs: Vec::with_capacity(n),
    };
    for (v, out) in outcomes.into_iter().enumerate() {
        let entry = match (out, prior[v].take()) {
            (Some(out), _) => {
                let Some(fi) = items.funs.get(cx.graph.name(v)) else {
                    cache.funs.push(None);
                    continue;
                };
                let errors = if out.errors.is_empty() {
                    no_errors.clone()
                } else {
                    let base = fi.base;
                    Arc::new(
                        out.errors
                            .into_iter()
                            .map(|e| LockError {
                                site: NodeId(e.site.0 - base),
                                ..e
                            })
                            .collect(),
                    )
                };
                Some(CachedFun {
                    errors,
                    sites: out.sites,
                    summary: out.summary,
                    sig: sigs[v].clone(),
                })
            }
            (None, Some(p)) if p.clean => Some(CachedFun {
                errors: p.entry.errors.clone(),
                sites: p.entry.sites,
                summary: p.summary.expect("clean function has a summary"),
                sig: sigs[v].clone(),
            }),
            _ => None,
        };
        cache.funs.push(entry);
    }

    drop(finish_span);

    ModeRun {
        report,
        cache,
        rechecked,
        hits,
        summary_changes,
    }
}

// ---------------------------------------------------------------------
// The session.
// ---------------------------------------------------------------------

/// A long-lived incremental analysis session over successive versions of
/// one module (the engine behind `localias watch` and the `watch` bench
/// bin).
///
/// # Example
///
/// ```
/// use localias_cqual::incremental::IncrementalSession;
///
/// let v1 = "lock l;\nvoid f() { spin_lock(&l); spin_unlock(&l); }\nvoid g() { f(); }\n";
/// let v2 = "lock l;\nvoid f() { spin_lock(&l); spin_unlock(&l); }\nvoid g() { int x = 1; f(); }\n";
/// let mut session = IncrementalSession::new("m", 1);
/// let cold = session.analyze(v1)?;
/// assert!(cold.stats.cold);
/// let warm = session.analyze(v2)?;
/// // Only `g` was re-checked; `f` was served from the function cache.
/// assert!(warm.stats.rechecked < warm.stats.slots);
/// # Ok::<(), localias_ast::ParseError>(())
/// ```
pub struct IncrementalSession {
    name: String,
    intra_jobs: usize,
    prev: Option<PrevState>,
}

impl IncrementalSession {
    /// Creates a session for a module named `name`, checking with up to
    /// `intra_jobs` worker threads per wave (`0` = one per core). The
    /// reports are byte-identical for every `intra_jobs` value.
    pub fn new(name: &str, intra_jobs: usize) -> IncrementalSession {
        IncrementalSession {
            name: name.to_string(),
            intra_jobs,
            prev: None,
        }
    }

    /// Analyzes one version of the module source, reusing whatever the
    /// previous version's artifacts still prove.
    pub fn analyze(&mut self, source: &str) -> Result<IncrOutcome, ParseError> {
        let _span = obs::span!("incr.analyze");
        let t_all = Instant::now();
        let raw_domain = format!("incr-raw;v{};", fp::ANALYSIS_VERSION);
        let raw_fp = fp::fingerprint(&raw_domain, source);

        // Byte-identical source: node ids cannot have moved, so the
        // cached reports are the answer.
        if let Some(prev) = &self.prev {
            if prev.raw_fp == raw_fp {
                obs::count(obs::Counter::IncrModuleHits, 1);
                let functions = prev.fun_count;
                return Ok(IncrOutcome {
                    reports: prev.reports.clone(),
                    stats: IncrStats {
                        functions,
                        slots: functions * MODES.len(),
                        hits: functions * MODES.len(),
                        module_hit: true,
                        total_seconds: t_all.elapsed().as_secs_f64(),
                        ..IncrStats::default()
                    },
                });
            }
        }

        let t_parse = Instant::now();
        let module = parse_module(&self.name, source)?;
        let parse_seconds = t_parse.elapsed().as_secs_f64();
        let items = ItemIndex::build(&module);

        let cold = self.prev.is_none();
        let mut full_fallback = false;
        let prev = self.prev.take().filter(|p| {
            let keep = p.prelude_fp == items.prelude_fp;
            full_fallback = !keep;
            keep
        });
        if full_fallback {
            obs::count(obs::Counter::IncrFullFallbacks, 1);
        }

        // Module-level phases: alias analysis and confine inference stay
        // whole-module; the function cache accelerates the check phase.
        let t_analysis = Instant::now();
        let mut shared = SharedAnalysis::new(&module);
        let ((base_a, base_f), (conf_a, conf_f)) = shared.both_frozen();
        let base_anchors = build_anchors(base_a, base_f, &items);
        let confine_anchors = build_anchors(conf_a, conf_f, &items);
        let base_locmap = prev
            .as_ref()
            .map(|p| build_locmap(&p.base_anchors, &base_anchors));
        let confine_locmap = prev
            .as_ref()
            .map(|p| build_locmap(&p.confine_anchors, &confine_anchors));
        let analysis_seconds = t_analysis.elapsed().as_secs_f64();

        let threads = resolve_jobs(self.intra_jobs);
        let t_check = Instant::now();
        // One call graph and one context per *analysis*; `AllStrong`
        // re-tags the base context rather than rebuilding it. The graph
        // is a function of the name list (prelude-pinned) and the callee
        // edges, so the previous run's graph is reused verbatim when
        // every function either kept its fingerprint or demonstrably
        // kept its callee set.
        let setup_span = obs::span!("incr.check_setup");
        // Whether each function's canonical item text survived the edit
        // (indexed by call-graph node — valid for the previous *and* a
        // rebuilt graph, since node ids are indices into the
        // prelude-pinned sorted name list). Filled during the graph
        // validation pass below; recomputed if that pass bails early.
        let mut fp_same: Vec<bool> = Vec::new();
        let reused = prev.as_ref().and_then(|p| {
            if !items.dups.is_empty() || p.graph.len() != items.funs.len() {
                return None;
            }
            fp_same = vec![false; p.graph.len()];
            let mut ok = true;
            for f in module.functions() {
                let name = f.name.name.as_str();
                match (
                    p.graph.node(name),
                    items.funs.get(name),
                    p.item_fps.get(name),
                ) {
                    (Some(v), Some(fi), Some(&old)) => {
                        let same = fi.fp == old;
                        fp_same[v] = same;
                        if !same && !p.graph.callees_match(v, f) {
                            ok = false;
                        }
                    }
                    _ => ok = false,
                }
            }
            ok.then(|| (p.graph.clone(), p.graph_sigs.clone()))
        });
        let (graph, graph_sigs) = match reused {
            Some(pair) => pair,
            None => {
                let graph = Arc::new(CallGraph::build(&module));
                let sigs = Arc::new(compute_graph_sigs(&graph));
                (graph, sigs)
            }
        };
        let mut by_name: FxHashMap<&str, &FunDef> = FxHashMap::default();
        by_name.reserve(items.funs.len());
        by_name.extend(module.functions().map(|f| (f.name.name.as_str(), f)));
        let cx_base =
            CheckContext::new_shared(&module, base_a, base_f, Mode::NoConfine, graph.clone());
        let cx_conf =
            CheckContext::new_shared(&module, conf_a, conf_f, Mode::Confine, graph.clone());
        drop(setup_span);
        // Static signatures are mode-independent: one vector per
        // analysis, shared by `NoConfine` and `AllStrong`.
        let base_sigs = compute_sigs(&cx_base, &items, &graph_sigs);
        let conf_sigs = compute_sigs(&cx_conf, &items, &graph_sigs);
        // The validation pass fills `fp_same` on its fast path; redo it
        // against the graph actually in use if that pass bailed early
        // (rebuilt graph, duplicate definitions).
        if prev.is_some() && fp_same.len() != graph.len() {
            fp_same = (0..graph.len())
                .map(|v| {
                    let name = graph.name(v);
                    !items.dups.contains(name)
                        && match (
                            items.funs.get(name),
                            prev.as_ref().and_then(|p| p.item_fps.get(name)),
                        ) {
                            (Some(fi), Some(&old)) => fi.fp == old,
                            _ => false,
                        }
                })
                .collect();
        }
        let pm = |i: usize, locmap: &'_ Option<LocMap>| match (&prev, locmap) {
            (Some(p), Some(_)) => Some(&p.modes[i]),
            _ => None,
        };
        let r0 = run_mode(
            &cx_base,
            &by_name,
            threads,
            &items,
            &base_sigs,
            pm(0, &base_locmap).map(|c| (c, base_locmap.as_ref().expect("gated"), &fp_same[..])),
        );
        let r1 = run_mode(
            &cx_conf,
            &by_name,
            threads,
            &items,
            &conf_sigs,
            pm(1, &confine_locmap)
                .map(|c| (c, confine_locmap.as_ref().expect("gated"), &fp_same[..])),
        );
        let cx_all = cx_base.with_mode(Mode::AllStrong);
        let r2 = run_mode(
            &cx_all,
            &by_name,
            threads,
            &items,
            &base_sigs,
            pm(2, &base_locmap).map(|c| (c, base_locmap.as_ref().expect("gated"), &fp_same[..])),
        );
        let runs = vec![r0, r1, r2];
        let check_seconds = t_check.elapsed().as_secs_f64();

        let functions = module.functions().count();
        let mut stats = IncrStats {
            functions,
            slots: functions * MODES.len(),
            module_hit: false,
            full_fallback,
            cold,
            parse_seconds,
            analysis_seconds,
            check_seconds,
            ..IncrStats::default()
        };
        for run in &runs {
            stats.rechecked += run.rechecked;
            stats.hits += run.hits;
            stats.summary_changes += run.summary_changes;
        }
        obs::count(obs::Counter::IncrFunHits, stats.hits as u64);
        obs::count(obs::Counter::IncrFunRechecks, stats.rechecked as u64);
        obs::count(
            obs::Counter::IncrSummaryChanges,
            stats.summary_changes as u64,
        );

        let mut it = runs.into_iter();
        let (r0, r1, r2) = (
            it.next().expect("three mode runs"),
            it.next().expect("three mode runs"),
            it.next().expect("three mode runs"),
        );
        let reports = [r0.report.clone(), r1.report.clone(), r2.report.clone()];
        let item_fps = items
            .funs
            .into_iter()
            .map(|(name, fi)| (name, fi.fp))
            .collect();
        self.prev = Some(PrevState {
            raw_fp,
            prelude_fp: items.prelude_fp,
            fun_count: functions,
            base_anchors,
            confine_anchors,
            item_fps,
            graph,
            graph_sigs,
            modes: [r0.cache, r1.cache, r2.cache],
            reports: [r0.report, r1.report, r2.report],
        });

        stats.total_seconds = t_all.elapsed().as_secs_f64();
        Ok(IncrOutcome { reports, stats })
    }

    /// The module name the session analyzes under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::check_locks;

    /// Full-pipeline reports for `source`, in [`MODES`] order.
    fn full_reports(source: &str) -> [LockReport; 3] {
        let m = parse_module("m", source).expect("parse");
        MODES.map(|mode| check_locks(&m, mode))
    }

    /// Drives `sources` through a session at each thread count, asserting
    /// every incremental report byte-equals from-scratch checking, and
    /// returns the stats of the final step (from the jobs=1 run).
    fn assert_identical(sources: &[&str]) -> IncrStats {
        let mut last = None;
        for jobs in [1usize, 4] {
            let mut session = IncrementalSession::new("m", jobs);
            for (i, src) in sources.iter().enumerate() {
                let out = session.analyze(src).expect("parse");
                let want = full_reports(src);
                for (mi, (got, want)) in out.reports.iter().zip(&want).enumerate() {
                    assert_eq!(
                        got, want,
                        "step {i} mode {mi} jobs {jobs}: incremental != full"
                    );
                }
                if jobs == 1 {
                    last = Some(out.stats);
                }
            }
        }
        last.expect("at least one source")
    }

    const CHAIN_V1: &str = "lock l;\n\
        void leaf(int n) { int a = 1; }\n\
        void mid(int n) { leaf(n); }\n\
        void top(int n) { mid(n); }\n";

    #[test]
    fn cold_run_rechecks_everything() {
        let mut s = IncrementalSession::new("m", 1);
        let out = s.analyze(CHAIN_V1).expect("parse");
        assert!(out.stats.cold);
        assert_eq!(out.stats.rechecked, out.stats.slots);
        assert_eq!(out.stats.hits, 0);
    }

    #[test]
    fn byte_identical_source_is_a_module_hit() {
        let mut s = IncrementalSession::new("m", 1);
        s.analyze(CHAIN_V1).expect("parse");
        let out = s.analyze(CHAIN_V1).expect("parse");
        assert!(out.stats.module_hit);
        assert_eq!(out.reports, full_reports(CHAIN_V1));
    }

    #[test]
    fn whitespace_noop_edit_rechecks_zero_functions() {
        // Raw text differs (comments, blank lines), canonical form does
        // not: every function is statically clean, so nothing re-runs.
        let v2 = "lock l;\n\n// a comment\nvoid leaf(int n) { int a = 1; }\n\
            void mid(int n) { leaf(n); }\n\nvoid top(int n) { mid(n); }\n";
        let stats = assert_identical(&[CHAIN_V1, v2]);
        assert!(!stats.module_hit, "raw fingerprints differ");
        assert_eq!(stats.rechecked, 0, "no-op edit must recheck nothing");
        assert_eq!(stats.hits, stats.slots);
    }

    #[test]
    fn interior_edit_with_unchanged_summary_stops_the_cone() {
        // `leaf` changes body text but not its summary: only `leaf`
        // re-runs; `mid` and `top` are hits in every mode.
        let v2 = "lock l;\n\
            void leaf(int n) { int a = 2; int b = a + 1; }\n\
            void mid(int n) { leaf(n); }\n\
            void top(int n) { mid(n); }\n";
        let stats = assert_identical(&[CHAIN_V1, v2]);
        assert_eq!(stats.rechecked, 3, "one function × three modes");
        assert_eq!(stats.hits, stats.slots - 3);
        assert_eq!(stats.summary_changes, 0);
    }

    #[test]
    fn summary_change_propagates_to_transitive_callers() {
        // `leaf` now acquires the lock: its summary changes, which
        // dirties `mid`, whose summary change dirties `top`.
        let v2 = "lock l;\n\
            void leaf(int n) { spin_lock(&l); }\n\
            void mid(int n) { leaf(n); }\n\
            void top(int n) { mid(n); }\n";
        let stats = assert_identical(&[CHAIN_V1, v2]);
        assert_eq!(stats.rechecked, stats.slots, "whole cone re-runs");
        assert_eq!(stats.hits, 0);
        assert!(stats.summary_changes >= 3, "leaf changed in every mode");
    }

    #[test]
    fn edit_inside_an_scc_rechecks_the_whole_scc() {
        let v1 = "void a(int n) { if (n > 0) { b(n - 1); } }\n\
            void b(int n) { if (n > 0) { a(n - 1); } }\n\
            void solo(int n) { int x = 1; }\n";
        // Edit only `b`: the {a, b} SCC re-runs as a unit, `solo` hits.
        let v2 = "void a(int n) { if (n > 0) { b(n - 1); } }\n\
            void b(int n) { if (n > 1) { a(n - 2); } }\n\
            void solo(int n) { int x = 1; }\n";
        let stats = assert_identical(&[v1, v2]);
        assert_eq!(stats.rechecked, 6, "both SCC members × three modes");
        assert_eq!(stats.hits, 3, "solo × three modes");
    }

    #[test]
    fn signature_change_falls_back_via_the_prelude_or_cone() {
        // Turning `mid`'s parameter into a restrict pointer changes its
        // interface; `top` (its caller) must re-run too.
        let v1 = "lock locks[4];\n\
            extern void work();\n\
            void leaf(lock *restrict p) { spin_lock(p); work(); spin_unlock(p); }\n\
            void mid(int i) { leaf(&locks[i]); }\n\
            void top(int i) { mid(i); }\n";
        let v2 = "lock locks[4];\n\
            extern void work();\n\
            void leaf(lock *restrict p) { spin_lock(p); work(); spin_unlock(p); }\n\
            void mid(int i) { leaf(&locks[i]); leaf(&locks[i + 1]); }\n\
            void top(int i) { mid(i); }\n";
        assert_identical(&[v1, v2]);
    }

    #[test]
    fn prelude_change_forces_a_full_fallback() {
        let v2 = "lock l;\nint g;\n\
            void leaf(int n) { int a = 1; }\n\
            void mid(int n) { leaf(n); }\n\
            void top(int n) { mid(n); }\n";
        let stats = assert_identical(&[CHAIN_V1, v2]);
        assert!(stats.full_fallback);
        assert_eq!(stats.rechecked, stats.slots);
    }

    #[test]
    fn lock_pair_break_is_caught_incrementally() {
        // The confinable array idiom, then a broken variant acquiring
        // twice: the incremental report must track the full one exactly.
        let v1 = "lock arr[8];\n\
            extern void work();\n\
            void leaf(int n) { spin_lock(&arr[n]); work(); spin_unlock(&arr[n]); }\n\
            void mid(int n) { leaf(n); }\n\
            void top(int n) { mid(n); }\n";
        let v2 = "lock arr[8];\n\
            extern void work();\n\
            void leaf(int n) { spin_lock(&arr[n]); work(); spin_lock(&arr[n]); }\n\
            void mid(int n) { leaf(n); }\n\
            void top(int n) { mid(n); }\n";
        // And back: the cache from v2 must not leak stale facts into v1.
        assert_identical(&[v1, v2, v1]);
    }

    #[test]
    fn renaming_a_function_changes_the_prelude() {
        let v2 = "lock l;\n\
            void leaf2(int n) { int a = 1; }\n\
            void mid(int n) { leaf2(n); }\n\
            void top(int n) { mid(n); }\n";
        let stats = assert_identical(&[CHAIN_V1, v2]);
        assert!(stats.full_fallback, "function set changed");
    }

    #[test]
    fn item_index_ranges_cover_every_function_id() {
        let m = parse_module("m", CHAIN_V1).expect("parse");
        let items = ItemIndex::build(&m);
        for f in m.functions() {
            let (owner, base) = items.owner_of(f.id).expect("function id owned");
            assert_eq!(owner, f.name.name);
            assert!(base <= f.id.0);
            // The body's block id also resolves to the same function.
            let (owner2, _) = items.owner_of(f.body.id).expect("body id owned");
            assert_eq!(owner2, f.name.name);
        }
    }
}
