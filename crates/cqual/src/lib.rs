#![warn(missing_docs)]

//! A flow-sensitive lock-state analysis in the style of CQual — the
//! evaluation substrate of *Checking and Inferring Local Non-Aliasing*
//! (PLDI 2003), Section 7.
//!
//! The checker refines `lock` with the flow-sensitive `locked`/`unlocked`
//! qualifiers and verifies every `spin_lock`/`spin_unlock` site. Its
//! precision hinges on *strong updates*, which are only sound for
//! abstract locations standing for a single concrete object; the
//! `restrict`/`confine` machinery of `localias-core` locally manufactures
//! such locations, and [`Mode`] selects how much of it runs — the three
//! modes of the paper's experiment.
//!
//! # Example
//!
//! ```
//! use localias_ast::parse_module;
//! use localias_cqual::{check_locks, Mode};
//!
//! let m = parse_module(
//!     "driver",
//!     r#"
//!     lock locks[8];
//!     extern void work();
//!     void f(int i) {
//!         spin_lock(&locks[i]);
//!         work();
//!         spin_unlock(&locks[i]);
//!     }
//!     "#,
//! )?;
//! // Weak updates cannot verify the unlock...
//! assert!(check_locks(&m, Mode::NoConfine).error_count() > 0);
//! // ...but confine inference recovers the strong updates.
//! assert_eq!(check_locks(&m, Mode::Confine).error_count(), 0);
//! # Ok::<(), localias_ast::ParseError>(())
//! ```

pub mod callgraph;
pub mod flow;
pub mod fx;
pub mod incremental;
mod intra;
pub mod qual;
pub mod report;
pub mod store;
mod summary;

pub use callgraph::CallGraph;
pub use flow::{
    check_locks, check_locks_frozen, check_locks_frozen_timed, check_locks_shared,
    check_locks_shared_jobs, check_locks_shared_timed, check_locks_with, IntraStats, Mode,
    WaveStat,
};
pub use incremental::{IncrOutcome, IncrStats, IncrementalSession, MODES};
pub use qual::LockState;
pub use report::{LockError, LockOp, LockReport};
pub use store::{strong_updatable, Store};
