//! Immutable interprocedural summaries and their call-site retargeting.
//!
//! A [`Summary`] is the complete interprocedural artifact of checking one
//! function: the lock states it requires on entry (per location, first
//! use) and the states it leaves on exit. Summaries are built bottom-up
//! over the [`crate::callgraph::CallGraph`] schedule and published behind
//! `Arc` — once published they are never mutated, so any number of
//! checker threads can apply one at their call sites concurrently.
//!
//! A summary speaks in the *callee's* frame: a restrict parameter's
//! entries name the callee's fresh `ρ'`. [`retarget`] maps those entries
//! onto the caller's actual-argument pointees, which is how a caller
//! inside a `confine` gets strong updates through
//! `do_with_lock(&locks[i])`.

use crate::fx::FxHashMap;
use crate::qual::LockState;
use crate::report::LockOp;
use localias_alias::{FrozenLocs, Loc};
use std::sync::Arc;

/// Per-function interprocedural summary. Immutable once published; share
/// via [`Arc`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Summary {
    /// Lock state required on entry, per location (first use).
    pub first_req: Vec<(Loc, LockState, LockOp)>,
    /// Lock state on exit, per touched location.
    pub out: Vec<(Loc, LockState)>,
    /// Whether some path through the function reached an unanalyzed
    /// (cyclic) call: locations absent from `out` exit in an *unknown*
    /// state, not their entry state, so callers must havoc in turn.
    /// Without this bit a recursive clique's effects silently vanish at
    /// every call site outside the clique (found by `localias fuzz`).
    pub havocked: bool,
}

/// The published summaries, keyed by function name. Between waves the
/// scheduler inserts the completed wave's summaries; during a wave the
/// map is only read (shared as `&Summaries` across worker threads).
pub(crate) type Summaries = FxHashMap<String, Arc<Summary>>;

/// Parameter metadata for retargeting restrict-parameter summaries.
#[derive(Debug, Clone)]
pub(crate) struct ParamInfo {
    /// The fresh `ρ'` a restrict parameter binds (pointee of the
    /// parameter variable), if the parameter is a pointer.
    pub rho_p: Option<Loc>,
    pub restrict: bool,
}

/// Resolves one summary location through the call-site retarget map and
/// the frozen location table.
pub(crate) fn retarget(map: &FxHashMap<Loc, Loc>, frozen: &FrozenLocs, loc: Loc) -> Loc {
    let target = map.get(&loc).copied().unwrap_or(loc);
    frozen.find(target)
}
