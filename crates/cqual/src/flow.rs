//! The interprocedural lock-checking pipeline.
//!
//! This module is the *scheduler*; the actual abstract interpretation
//! lives in [`crate::intra`], the call-graph structure in
//! [`crate::callgraph`], and the interprocedural artifacts in
//! [`crate::summary`]. Checking a module is:
//!
//! 1. **Freeze** the analysis' location table ([`localias_core::Analysis::freeze`])
//!    — after analysis no unification ever happens again, so resolution
//!    becomes an immutable, `Sync` lookup.
//! 2. **Build** the [`crate::callgraph::CallGraph`]: Tarjan SCC
//!    condensation, a deterministic bottom-up schedule, and a wave
//!    partition of the summary-dependency DAG.
//! 3. **Check** each function ([`crate::intra::check_function`]) against
//!    the frozen facts and its dependencies' published summaries — wave
//!    by wave, each wave's functions in parallel when `intra_jobs > 1`.
//! 4. **Assemble** the report in schedule order, so the output is
//!    byte-identical for every thread count (and to the historical
//!    sequential checker).
//!
//! Interprocedural behaviour goes through per-function summaries applied
//! bottom-up; calls into recursive cycles conservatively havoc the
//! store. See `crates/cqual/src/intra.rs` for where the paper's
//! restrict/confine machinery plugs into the per-function walk.

use crate::fx::FxHashMap;
use crate::intra::{check_function, CheckContext, FunOutcome};
use crate::report::LockReport;
use crate::summary::Summaries;
use localias_alias::FrozenLocs;
use localias_ast::{FunDef, Module};
use localias_core::Analysis;
use localias_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The three analysis modes of the Section 7 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Plain analysis: strong updates only where aliasing already permits
    /// them (single-object locations such as scalar global locks).
    NoConfine,
    /// Run confine inference first; inferred confines introduce
    /// single-object locations at the lock sites they cover.
    Confine,
    /// Pretend every update is strong — the upper bound on what any
    /// amount of confining could recover.
    AllStrong,
}

/// Per-wave execution record of one checker run.
#[derive(Debug, Clone)]
pub struct WaveStat {
    /// Number of functions checked in this wave.
    pub functions: usize,
    /// Wall-clock seconds the wave took.
    pub seconds: f64,
    /// Wall-clock seconds of the single slowest function in the wave —
    /// the straggler that bounds how much parallelism can help.
    pub max_fun_seconds: f64,
}

/// Execution statistics of one [`check_locks_frozen_timed`] run.
#[derive(Debug, Clone)]
pub struct IntraStats {
    /// Worker threads the run was allowed to use per wave.
    pub threads: usize,
    /// Number of defined functions checked.
    pub functions: usize,
    /// Number of SCCs in the call graph's condensation.
    pub sccs: usize,
    /// Per-wave records, in schedule order.
    pub waves: Vec<WaveStat>,
}

impl IntraStats {
    /// Total wall-clock seconds across all waves.
    pub fn total_seconds(&self) -> f64 {
        self.waves.iter().map(|w| w.seconds).sum()
    }
}

/// Checks the locking behaviour of `m` under `mode`, running the
/// appropriate `localias-core` analysis first.
pub fn check_locks(m: &Module, mode: Mode) -> LockReport {
    let mut shared = localias_core::SharedAnalysis::new(m);
    check_locks_shared(&mut shared, mode)
}

/// Checks locking under `mode`, reusing (and lazily filling) the shared
/// per-module analysis cache. Sequential; see
/// [`check_locks_shared_jobs`] for the wave-parallel variant.
pub fn check_locks_shared(shared: &mut localias_core::SharedAnalysis, mode: Mode) -> LockReport {
    check_locks_shared_jobs(shared, mode, 1)
}

/// Checks locking under `mode` with up to `intra_jobs` worker threads
/// per wave (`0` = one per available core), reusing the shared
/// per-module analysis cache.
///
/// `Mode::NoConfine` and `Mode::AllStrong` both consume the base
/// analysis; `Mode::Confine` consumes the confine-inference analysis.
/// The checker reads the analysis only through its frozen location
/// snapshot, so one cached analysis serves any number of modes and
/// produces byte-identical reports to fresh per-mode runs — at any
/// thread count.
pub fn check_locks_shared_jobs(
    shared: &mut localias_core::SharedAnalysis,
    mode: Mode,
    intra_jobs: usize,
) -> LockReport {
    let m = shared.module();
    let (analysis, frozen) = match mode {
        Mode::Confine => shared.confine_frozen(),
        Mode::NoConfine | Mode::AllStrong => shared.base_frozen(),
    };
    check_locks_frozen(m, analysis, frozen, mode, intra_jobs)
}

/// Like [`check_locks_shared_jobs`], also returning per-wave execution
/// statistics.
pub fn check_locks_shared_timed(
    shared: &mut localias_core::SharedAnalysis,
    mode: Mode,
    intra_jobs: usize,
) -> (LockReport, IntraStats) {
    let m = shared.module();
    let (analysis, frozen) = match mode {
        Mode::Confine => shared.confine_frozen(),
        Mode::NoConfine | Mode::AllStrong => shared.base_frozen(),
    };
    check_locks_frozen_timed(m, analysis, frozen, mode, intra_jobs)
}

/// Checks locking given an already-computed analysis (the caller decides
/// whether it includes confine inference). Freezes the location table,
/// then runs the sequential schedule.
pub fn check_locks_with(m: &Module, analysis: &mut Analysis, mode: Mode) -> LockReport {
    let frozen = analysis.freeze();
    check_locks_frozen(m, analysis, &frozen, mode, 1)
}

/// Checks locking against a frozen analysis with up to `intra_jobs`
/// worker threads per wave (`0` = one per available core, `1` =
/// sequential).
///
/// The report is byte-identical for every `intra_jobs` value: functions
/// are checked wave-by-wave (so every summary a function consumes is
/// published first), and errors are assembled in schedule order.
pub fn check_locks_frozen(
    m: &Module,
    analysis: &Analysis,
    frozen: &FrozenLocs,
    mode: Mode,
    intra_jobs: usize,
) -> LockReport {
    check_locks_frozen_timed(m, analysis, frozen, mode, intra_jobs).0
}

/// Like [`check_locks_frozen`], also returning per-wave execution
/// statistics.
pub fn check_locks_frozen_timed(
    m: &Module,
    analysis: &Analysis,
    frozen: &FrozenLocs,
    mode: Mode,
    intra_jobs: usize,
) -> (LockReport, IntraStats) {
    let _span = obs::span!("cqual.check");
    let cx = CheckContext::new(m, analysis, frozen, mode);
    let threads = resolve_jobs(intra_jobs);
    // With duplicate definitions the later one wins (legacy behaviour of
    // the name-keyed function map).
    let by_name: FxHashMap<&str, &FunDef> =
        m.functions().map(|f| (f.name.name.as_str(), f)).collect();

    let n = cx.graph.len();
    let mut outcomes: Vec<Option<FunOutcome>> = (0..n).map(|_| None).collect();
    let mut summaries: Summaries = Summaries::default();
    let mut stats = IntraStats {
        threads,
        functions: n,
        sccs: cx.graph.scc_count(),
        waves: Vec::with_capacity(cx.graph.waves().len()),
    };

    for wave in cx.graph.waves() {
        obs::count(obs::Counter::CqualWaves, 1);
        let wave_span = obs::span!("cqual.wave");
        let started = Instant::now();
        let mut max_fun_seconds = 0.0f64;
        if threads <= 1 || wave.len() <= 1 {
            for &v in wave {
                if let Some(f) = by_name.get(cx.graph.name(v)) {
                    let t0 = Instant::now();
                    outcomes[v] = Some(check_function(&cx, &summaries, f));
                    max_fun_seconds = max_fun_seconds.max(t0.elapsed().as_secs_f64());
                }
            }
        } else {
            for (v, out, secs) in check_wave_parallel(&cx, &summaries, &by_name, wave, threads) {
                outcomes[v] = Some(out);
                max_fun_seconds = max_fun_seconds.max(secs);
            }
        }
        // Publish the wave's summaries (in schedule order) before the
        // next wave starts.
        for &v in wave {
            if let Some(out) = &outcomes[v] {
                summaries.insert(cx.graph.name(v).to_string(), out.summary.clone());
            }
        }
        obs::record_duration(obs::Hist::CheckWave, started.elapsed());
        drop(wave_span);
        stats.waves.push(WaveStat {
            functions: wave.len(),
            seconds: started.elapsed().as_secs_f64(),
            max_fun_seconds,
        });
    }

    // Assemble in schedule order — the exact order the sequential
    // checker emitted errors in.
    let mut report = LockReport::default();
    for &v in cx.graph.order() {
        if let Some(out) = outcomes[v].take() {
            report.errors.extend(out.errors);
            report.sites += out.sites;
        }
    }
    (report, stats)
}

/// Checks one wave's functions on `threads` scoped worker threads with
/// an atomic work-stealing cursor (the same pool shape the corpus sweep
/// uses), returning `(node, outcome, seconds)` triples. Workers record
/// their spans under the spawner's current span path (via
/// [`obs::fork`]), so the merged span tree is identical to a sequential
/// run's.
pub(crate) fn check_wave_parallel(
    cx: &CheckContext<'_>,
    summaries: &Summaries,
    by_name: &FxHashMap<&str, &FunDef>,
    wave: &[usize],
    threads: usize,
) -> Vec<(usize, FunOutcome, f64)> {
    let workers = threads.min(wave.len());
    let next = AtomicUsize::new(0);
    let span_cx = obs::fork();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let span_cx = span_cx.clone();
                s.spawn(move || {
                    let _attached = span_cx.attach();
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&v) = wave.get(i) else { break };
                        if let Some(f) = by_name.get(cx.graph.name(v)) {
                            let t0 = Instant::now();
                            let out = check_function(cx, summaries, f);
                            got.push((v, out, t0.elapsed().as_secs_f64()));
                        }
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("checker thread panicked"))
            .collect()
    })
}

/// Resolves an `--intra-jobs` value: `0` means one worker per available
/// core.
pub(crate) fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_jobs_zero_is_auto() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn frozen_checker_matches_shared_entrypoints() {
        let m = localias_ast::parse_module(
            "t",
            r#"
            lock l;
            void locker() { spin_lock(&l); }
            void unlocker() { spin_unlock(&l); }
            void seq() { locker(); unlocker(); }
            "#,
        )
        .expect("parse");
        for mode in [Mode::NoConfine, Mode::Confine, Mode::AllStrong] {
            let base = check_locks(&m, mode);
            for jobs in [1, 2, 8] {
                let mut shared = localias_core::SharedAnalysis::new(&m);
                let got = check_locks_shared_jobs(&mut shared, mode, jobs);
                assert_eq!(got, base, "{mode:?} jobs={jobs}");
            }
        }
    }

    /// The checker consumes *only* the frozen snapshot: once a
    /// [`FrozenLocs`](localias_alias::FrozenLocs) view is captured,
    /// mutating the live location table must not change the report. This
    /// is the invariant that makes alias backends pluggable — a backend
    /// only has to produce a snapshot, never to keep the live table in
    /// sync with it.
    #[test]
    fn checker_reads_only_the_frozen_view() {
        let m = localias_ast::parse_module(
            "t",
            r#"
            lock a;
            lock b;
            extern void work();
            void f() {
                spin_lock(&a); work(); spin_unlock(&a);
                spin_lock(&b); work(); spin_unlock(&b);
            }
            "#,
        )
        .expect("parse");
        for mode in [Mode::NoConfine, Mode::Confine, Mode::AllStrong] {
            let mut a = localias_core::check(&m);
            let frozen = a.freeze();
            let base = check_locks_frozen(&m, &a, &frozen, mode, 1);
            // Vandalize the live table: merge everything into one tainted,
            // weakly-updatable class.
            let n = a.state.locs.len() as u32;
            for i in 1..n {
                a.state
                    .locs
                    .union_raw(localias_alias::Loc(0), localias_alias::Loc(i));
            }
            a.state.locs.taint(localias_alias::Loc(0));
            a.state.locs.raise_multiplicity(
                localias_alias::Loc(0),
                localias_alias::loc::Multiplicity::Many,
            );
            let got = check_locks_frozen(&m, &a, &frozen, mode, 1);
            assert_eq!(
                got, base,
                "{mode:?}: live-table mutation leaked into the report"
            );
        }
    }

    /// The Steensgaard backend selected explicitly through
    /// [`SharedAnalysis::new_with_backend`](localias_core::SharedAnalysis::new_with_backend)
    /// is byte-identical to the historical default path, across all three
    /// modes and several worker counts.
    #[test]
    fn steensgaard_backend_reports_are_byte_identical() {
        let m = localias_ast::parse_module(
            "t",
            r#"
            lock l;
            lock other;
            void locker() { spin_lock(&l); }
            void unlocker() { spin_unlock(&l); }
            void seq() { locker(); unlocker(); spin_lock(&other); spin_unlock(&other); }
            "#,
        )
        .expect("parse");
        for mode in [Mode::NoConfine, Mode::Confine, Mode::AllStrong] {
            let base = check_locks(&m, mode);
            for jobs in [1, 2, 8] {
                let mut shared = localias_core::SharedAnalysis::new_with_backend(
                    &m,
                    localias_alias::Backend::Steensgaard,
                );
                let got = check_locks_shared_jobs(&mut shared, mode, jobs);
                assert_eq!(got, base, "{mode:?} jobs={jobs}");
            }
        }
    }

    /// End-to-end precision win: on a module where unification conflates
    /// two locks that inclusion-based analysis keeps apart, the Andersen
    /// backend eliminates the spurious weak-update errors in the
    /// no-confine baseline, and all three modes still run to completion.
    #[test]
    fn andersen_backend_eliminates_spurious_conflation_errors() {
        let m = localias_ast::parse_module(
            "t",
            r#"
            lock a;
            lock b;
            extern void work();
            void f() {
                spin_lock(&a); work(); spin_unlock(&a);
                spin_lock(&b); work(); spin_unlock(&b);
            }
            void g() {
                lock *x;
                lock *y;
                x = &a;
                y = &b;
                x = y;
            }
            "#,
        )
        .expect("parse");
        let steens = {
            let mut shared = localias_core::SharedAnalysis::new_with_backend(
                &m,
                localias_alias::Backend::Steensgaard,
            );
            check_locks_shared_jobs(&mut shared, Mode::NoConfine, 1)
        };
        let anders = {
            let mut shared = localias_core::SharedAnalysis::new_with_backend(
                &m,
                localias_alias::Backend::Andersen,
            );
            check_locks_shared_jobs(&mut shared, Mode::NoConfine, 1)
        };
        assert!(
            steens.error_count() > 0,
            "Steensgaard should conflate a with b and report weak-update errors"
        );
        assert!(
            anders.error_count() < steens.error_count(),
            "Andersen ({}) should beat Steensgaard ({}) on the conflated module",
            anders.error_count(),
            steens.error_count()
        );
        // The refined classes must not break the other checker modes.
        for mode in [Mode::Confine, Mode::AllStrong] {
            let mut shared = localias_core::SharedAnalysis::new_with_backend(
                &m,
                localias_alias::Backend::Andersen,
            );
            let _ = check_locks_shared_jobs(&mut shared, mode, 1);
        }
    }
}
