//! The flow-sensitive lock checker.
//!
//! Mini-C has structured control flow, so the checker is a direct
//! abstract interpretation over the AST: straight-line composition for
//! blocks, pointwise join for `if`, and a fixpoint (then a final
//! reporting pass) for `while`. Interprocedural behaviour goes through
//! per-function *summaries* computed bottom-up over the call graph; calls
//! into recursive cycles conservatively havoc the store.
//!
//! ## Where the paper's machinery plugs in
//!
//! * **Strong vs. weak updates**: a `spin_lock`/`spin_unlock` site
//!   updates its lock's abstract location strongly only when the location
//!   stands for a single object ([`crate::store::strong_updatable`]) — or
//!   always, under [`Mode::AllStrong`]. `restrict`/`confine` introduce
//!   exactly such single-object locations.
//! * **Scope boundaries**: a `restrict`/`confine` scope binds a fresh
//!   `ρ'` that is a *copy* of one member of `ρ`'s class. On scope entry
//!   the checker copies `ρ`'s state to `ρ'`; on exit it folds `ρ'`'s
//!   state back into `ρ` (weakly, unless `ρ` itself is single-object).
//! * **Restrict parameters**: the callee's summary speaks of its own
//!   `ρ'`; at a call site those entries are *retargeted* to the actual
//!   argument's pointee, which is how a caller inside a `confine` gets
//!   strong updates through `do_with_lock(&locks[i])`.

use crate::qual::LockState;
use crate::report::{LockError, LockOp, LockReport};
use crate::store::{strong_updatable, Store};
use localias_alias::Loc;
use localias_alias::{State, Ty};
use localias_ast::{intrinsics, Block, Expr, ExprKind, FunDef, Module, NodeId, Stmt, StmtKind};
use localias_core::{Analysis, ConfineSite};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// The three analysis modes of the Section 7 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Plain analysis: strong updates only where aliasing already permits
    /// them (single-object locations such as scalar global locks).
    NoConfine,
    /// Run confine inference first; inferred confines introduce
    /// single-object locations at the lock sites they cover.
    Confine,
    /// Pretend every update is strong — the upper bound on what any
    /// amount of confining could recover.
    AllStrong,
}

/// A scope boundary requiring lock-state copy-in/copy-out.
#[derive(Debug, Clone, Copy)]
struct RangeScope {
    start: usize,
    end: usize,
    rho: Loc,
    rho_p: Loc,
}

/// Per-function interprocedural summary.
#[derive(Debug, Clone, Default)]
struct Summary {
    /// Lock state required on entry, per location (first use).
    first_req: Vec<(Loc, LockState, LockOp)>,
    /// Lock state on exit, per touched location.
    out: Vec<(Loc, LockState)>,
}

/// Parameter metadata for retargeting restrict-parameter summaries.
#[derive(Debug, Clone)]
struct ParamInfo {
    /// The fresh `ρ'` a restrict parameter binds (pointee of the
    /// parameter variable), if the parameter is a pointer.
    rho_p: Option<Loc>,
    restrict: bool,
}

/// Checks the locking behaviour of `m` under `mode`, running the
/// appropriate `localias-core` analysis first.
pub fn check_locks(m: &Module, mode: Mode) -> LockReport {
    let mut shared = localias_core::SharedAnalysis::new(m);
    check_locks_shared(&mut shared, mode)
}

/// Checks locking under `mode`, reusing (and lazily filling) the shared
/// per-module analysis cache.
///
/// `Mode::NoConfine` and `Mode::AllStrong` both consume the base
/// analysis; `Mode::Confine` consumes the confine-inference analysis.
/// The checker only mutates the analysis through union-find path
/// compression, so one cached analysis serves any number of modes and
/// produces byte-identical reports to fresh per-mode runs.
pub fn check_locks_shared(shared: &mut localias_core::SharedAnalysis, mode: Mode) -> LockReport {
    let m = shared.module();
    let analysis = match mode {
        Mode::Confine => &mut shared.confine().analysis,
        Mode::NoConfine | Mode::AllStrong => shared.base(),
    };
    check_locks_with(m, analysis, mode)
}

/// Checks locking given an already-computed analysis (the caller decides
/// whether it includes confine inference).
pub fn check_locks_with(m: &Module, analysis: &mut Analysis, mode: Mode) -> LockReport {
    let mut flow = Flow::new(m, analysis, mode);
    flow.run(m);
    LockReport {
        errors: flow.errors,
        sites: flow.sites,
    }
}

struct Flow<'a> {
    st: &'a mut State,
    mode: Mode,
    /// Range scopes by block id, from confine outcomes.
    range_scopes: HashMap<NodeId, Vec<RangeScope>>,
    /// `(ρ, ρ')` for explicit confine/restrict statements, by stmt id.
    stmt_scopes: HashMap<NodeId, (Loc, Loc)>,
    /// Per-function parameter metadata; `Rc` so each call site shares it
    /// instead of cloning the vector.
    params: HashMap<String, Rc<Vec<ParamInfo>>>,
    /// Bottom-up interprocedural summaries; `Rc` so applying a summary at
    /// a call site is a pointer bump, not a deep copy.
    summaries: HashMap<String, Rc<Summary>>,
    /// Functions in recursive cycles (no summary; calls havoc).
    cyclic: HashSet<String>,
    errors: Vec<LockError>,
    sites: usize,
    recording: bool,
    current_fun: String,
    req_sink: Option<ReqSink>,
    /// Break/continue join points for each enclosing loop.
    loop_stack: Vec<LoopExits>,
    /// Join of the stores at every `return` in the current function.
    return_store: Store,
}

/// Break/continue accumulators for one loop.
#[derive(Debug, Default)]
struct LoopExits {
    breaks: Store,
    continues: Store,
}

impl LoopExits {
    fn new() -> Self {
        LoopExits {
            breaks: Store::bottom(),
            continues: Store::bottom(),
        }
    }
}

impl<'a> Flow<'a> {
    fn new(m: &Module, analysis: &'a mut Analysis, mode: Mode) -> Self {
        let mut range_scopes: HashMap<NodeId, Vec<RangeScope>> = HashMap::new();
        let mut stmt_scopes = HashMap::new();
        for c in &analysis.confines {
            let Some((rho, rho_p)) = c.locs else { continue };
            match c.site {
                ConfineSite::Range { block, start, end } => {
                    range_scopes.entry(block).or_default().push(RangeScope {
                        start,
                        end,
                        rho,
                        rho_p,
                    });
                }
                ConfineSite::Stmt(at) => {
                    stmt_scopes.insert(at, (rho, rho_p));
                }
            }
        }
        for r in &analysis.restricts {
            if let Some((rho, rho_p)) = r.locs {
                // Parameter restricts are keyed by the function node and
                // handled through summaries; statement/decl restricts are
                // keyed by their statement node. A function node is never
                // a statement node, so one map serves both without
                // ambiguity.
                stmt_scopes.insert(r.at, (rho, rho_p));
            }
        }
        // Copy-in/out ordering: at a shared start boundary the wider
        // (outer) scope must copy in first.
        for scopes in range_scopes.values_mut() {
            scopes.sort_by_key(|s| (s.start, std::cmp::Reverse(s.end)));
        }

        // Parameter metadata. A parameter behaves as restrict if the
        // programmer wrote the qualifier *or* parameter-restrict
        // inference proved it (a successful candidate keyed by the
        // function node and parameter name).
        let inferred: std::collections::HashSet<(NodeId, &str)> = analysis
            .candidates
            .iter()
            .filter(|c| c.restricted)
            .map(|c| (c.at, c.name.as_str()))
            .collect();
        let mut params: HashMap<String, Rc<Vec<ParamInfo>>> = HashMap::new();
        for f in m.functions() {
            let mut infos = Vec::new();
            for p in &f.params {
                let rho_p = analysis
                    .state
                    .vars
                    .iter()
                    .find(|v| v.fun.as_deref() == Some(&f.name.name) && v.name == p.name.name)
                    .and_then(|v| v.ty.pointee());
                let restrict = p.restrict || inferred.contains(&(f.id, p.name.name.as_str()));
                infos.push(ParamInfo { rho_p, restrict });
            }
            params.insert(f.name.name.clone(), Rc::new(infos));
        }

        Flow {
            st: &mut analysis.state,
            mode,
            range_scopes,
            stmt_scopes,
            params,
            summaries: HashMap::new(),
            cyclic: HashSet::new(),
            errors: Vec::new(),
            sites: 0,
            recording: false,
            current_fun: String::new(),
            req_sink: None,
            loop_stack: Vec::new(),
            return_store: Store::bottom(),
        }
    }

    fn run(&mut self, m: &Module) {
        // Bottom-up over the call graph; functions in cycles get no
        // summary (calls to them havoc).
        let order = call_order(m, &mut self.cyclic);
        let by_name: HashMap<&str, &FunDef> =
            m.functions().map(|f| (f.name.name.as_str(), f)).collect();
        for name in order {
            let Some(f) = by_name.get(name.as_str()) else {
                continue;
            };
            self.analyze_fun(f);
        }
    }

    fn analyze_fun(&mut self, f: &FunDef) {
        self.current_fun = f.name.name.clone();
        let mut store = Store::new();
        self.recording = true;
        self.req_sink = Some(ReqSink::default());
        self.return_store = Store::bottom();
        self.block(&f.body, &mut store);
        self.recording = false;
        let sink = self.req_sink.take().expect("sink");

        // The function's exit state is the join of its fall-through state
        // and every early return.
        store.join(&std::mem::replace(&mut self.return_store, Store::bottom()));
        let out = store.iter().collect();
        self.summaries.insert(
            f.name.name.clone(),
            Rc::new(Summary {
                first_req: sink.reqs,
                out,
            }),
        );
    }

    fn copy_in(&mut self, store: &mut Store, rho: Loc, rho_p: Loc) {
        let rho = self.st.locs.find(rho);
        let rho_p = self.st.locs.find(rho_p);
        if rho == rho_p {
            return; // demoted candidate — nothing to transfer
        }
        store.set(rho_p, store.state(rho));
    }

    fn copy_out(&mut self, store: &mut Store, rho: Loc, rho_p: Loc) {
        let rho = self.st.locs.find(rho);
        let rho_p = self.st.locs.find(rho_p);
        if rho == rho_p {
            return;
        }
        let strong = self.strong(rho);
        store.update(rho, store.state(rho_p), strong);
    }

    fn strong(&mut self, loc: Loc) -> bool {
        match self.mode {
            Mode::AllStrong => true,
            _ => strong_updatable(&mut self.st.locs, loc),
        }
    }

    fn block(&mut self, b: &Block, store: &mut Store) {
        let scopes: Vec<RangeScope> = self.range_scopes.get(&b.id).cloned().unwrap_or_default();
        let mut decl_scopes: Vec<(Loc, Loc)> = Vec::new();
        for (i, s) in b.stmts.iter().enumerate() {
            for sc in scopes.iter().filter(|sc| sc.start == i) {
                self.copy_in(store, sc.rho, sc.rho_p);
            }
            self.stmt(s, store, &mut decl_scopes);
            // Inner scopes (larger start) copy out first.
            let mut ending: Vec<&RangeScope> = scopes.iter().filter(|sc| sc.end == i).collect();
            ending.sort_by_key(|sc| std::cmp::Reverse(sc.start));
            for sc in ending {
                self.copy_out(store, sc.rho, sc.rho_p);
            }
        }
        // Declaration-restrict scopes end with the block, innermost first.
        for &(rho, rho_p) in decl_scopes.iter().rev() {
            self.copy_out(store, rho, rho_p);
        }
    }

    fn stmt(&mut self, s: &Stmt, store: &mut Store, decl_scopes: &mut Vec<(Loc, Loc)>) {
        match &s.kind {
            StmtKind::Expr(e) => self.expr(e, store),
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    self.expr(e, store);
                }
                if let Some(&(rho, rho_p)) = self.stmt_scopes.get(&s.id) {
                    self.copy_in(store, rho, rho_p);
                    decl_scopes.push((rho, rho_p));
                }
            }
            StmtKind::Restrict { init, body, .. } => {
                self.expr(init, store);
                let scope = self.stmt_scopes.get(&s.id).copied();
                if let Some((rho, rho_p)) = scope {
                    self.copy_in(store, rho, rho_p);
                }
                self.block(body, store);
                if let Some((rho, rho_p)) = scope {
                    self.copy_out(store, rho, rho_p);
                }
            }
            StmtKind::Confine { expr, body } => {
                self.expr(expr, store);
                let scope = self.stmt_scopes.get(&s.id).copied();
                if let Some((rho, rho_p)) = scope {
                    self.copy_in(store, rho, rho_p);
                }
                self.block(body, store);
                if let Some((rho, rho_p)) = scope {
                    self.copy_out(store, rho, rho_p);
                }
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond, store);
                let mut then_store = store.clone();
                self.block(then_blk, &mut then_store);
                match else_blk {
                    Some(e) => {
                        let mut else_store = store.clone();
                        self.block(e, &mut else_store);
                        then_store.join(&else_store);
                    }
                    None => then_store.join(store),
                }
                *store = then_store;
            }
            StmtKind::While { cond, body, step } => {
                // Fixpoint without recording, then one recording pass
                // from the stabilized loop-head store. `continue` joins
                // back before the step (C `for` semantics); `break` joins
                // into the loop's exit.
                let was_recording = self.recording;
                self.recording = false;
                let mut head = store.clone();
                loop {
                    let mut iter_store = head.clone();
                    self.expr(cond, &mut iter_store);
                    self.loop_stack.push(LoopExits::new());
                    self.block(body, &mut iter_store);
                    let exits = self.loop_stack.pop().expect("loop exits");
                    // The step runs on both normal completion and
                    // continue.
                    iter_store.join(&exits.continues);
                    if let Some(step) = step {
                        self.expr(step, &mut iter_store);
                    }
                    let mut next = head.clone();
                    next.join(&iter_store);
                    if next == head {
                        break;
                    }
                    head = next;
                }
                self.recording = was_recording;
                let mut exit_store = head.clone();
                self.expr(cond, &mut exit_store);
                let mut body_store = exit_store.clone();
                self.loop_stack.push(LoopExits::new());
                self.block(body, &mut body_store);
                let exits = self.loop_stack.pop().expect("loop exits");
                body_store.join(&exits.continues);
                if let Some(step) = step {
                    self.expr(step, &mut body_store);
                }
                exit_store.join(&exits.breaks);
                *store = exit_store;
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.expr(e, store);
                }
                self.return_store.join(store);
                store.mark_unreachable();
            }
            StmtKind::Break => {
                match self.loop_stack.last_mut() {
                    Some(top) => top.breaks.join(store),
                    // break outside a loop: the path simply ends.
                    None => self.return_store.join(store),
                }
                store.mark_unreachable();
            }
            StmtKind::Continue => {
                match self.loop_stack.last_mut() {
                    Some(top) => top.continues.join(store),
                    None => self.return_store.join(store),
                }
                store.mark_unreachable();
            }
            StmtKind::Block(b) => self.block(b, store),
        }
    }

    fn expr(&mut self, e: &Expr, store: &mut Store) {
        match &e.kind {
            ExprKind::Int(_) | ExprKind::Var(_) => {}
            ExprKind::Unary(_, a) | ExprKind::New(a) | ExprKind::Cast(_, a) => self.expr(a, store),
            ExprKind::Binary(_, a, b) | ExprKind::Assign(a, b) | ExprKind::Index(a, b) => {
                self.expr(a, store);
                self.expr(b, store);
            }
            ExprKind::Field(a, _) | ExprKind::Arrow(a, _) => self.expr(a, store),
            ExprKind::Call(f, args) => {
                for a in args {
                    self.expr(a, store);
                }
                self.call(e.id, &f.name, args, store);
            }
        }
    }

    fn require(&mut self, store: &Store, loc: Loc, required: LockState, op: LockOp, site: NodeId) {
        // Record a summary requirement on first touch.
        if let Some(sink) = &mut self.req_sink {
            if !store.touched(loc) && sink.seen.insert(loc) {
                sink.reqs.push((loc, required, op));
            }
        }
        if self.recording {
            let found = store.state(loc);
            if !found.verifies(required) {
                self.errors.push(LockError {
                    site,
                    op,
                    found,
                    fun: self.current_fun.clone(),
                });
            }
        }
    }

    fn call(&mut self, site: NodeId, callee: &str, args: &[Expr], store: &mut Store) {
        if intrinsics::is_change_type(callee) {
            let (required, new, op) = match callee {
                intrinsics::SPIN_LOCK => (LockState::Unlocked, LockState::Locked, LockOp::Acquire),
                intrinsics::SPIN_UNLOCK => {
                    (LockState::Locked, LockState::Unlocked, LockOp::Release)
                }
                _ => {
                    // Generic change_type: no requirement, unknown result.
                    for a in args {
                        if let Some(loc) = self.arg_pointee(a) {
                            store.update(loc, LockState::Top, false);
                        }
                    }
                    return;
                }
            };
            if self.recording {
                self.sites += 1;
            }
            let Some(arg) = args.first() else { return };
            let Some(loc) = self.arg_pointee(arg) else {
                return;
            };
            self.require(store, loc, required, op, site);
            let strong = self.strong(loc);
            store.update(loc, new, strong);
            return;
        }

        // Defined function: apply its summary.
        let Some(sum) = self.summaries.get(callee).cloned() else {
            if self.cyclic.contains(callee) {
                store.havoc();
            }
            return;
        };
        let retarget = self.retarget_map(callee, args);
        for (loc, required, _op) in &sum.first_req {
            let target = retarget.get(loc).copied().unwrap_or(*loc);
            let target = self.st.locs.find(target);
            self.require(store, target, *required, LockOp::CallRequirement, site);
        }
        for (loc, out_state) in &sum.out {
            let target = retarget.get(loc).copied().unwrap_or(*loc);
            let target = self.st.locs.find(target);
            let strong = self.strong(target);
            store.update(target, *out_state, strong);
        }
    }

    /// Maps a callee's restrict-parameter `ρ'` locations to the actual
    /// arguments' pointee locations at this call site.
    fn retarget_map(&mut self, callee: &str, args: &[Expr]) -> HashMap<Loc, Loc> {
        let mut map = HashMap::new();
        let Some(infos) = self.params.get(callee).cloned() else {
            return map;
        };
        for (info, arg) in infos.iter().zip(args) {
            if !info.restrict {
                continue;
            }
            let Some(rho_p) = info.rho_p else { continue };
            if let Some(target) = self.arg_pointee(arg) {
                map.insert(self.st.locs.find(rho_p), target);
            }
        }
        map
    }

    /// The canonical pointee location of a pointer-valued argument.
    fn arg_pointee(&mut self, arg: &Expr) -> Option<Loc> {
        match self.st.expr_ty.get(arg.id.index())?.as_ref()? {
            Ty::Ref(l) => Some(self.st.locs.find(*l)),
            _ => None,
        }
    }
}

/// The summary-requirement collector threaded through function analysis.
#[derive(Debug, Default)]
struct ReqSink {
    reqs: Vec<(Loc, LockState, LockOp)>,
    seen: HashSet<Loc>,
}

/// Computes a bottom-up ordering of defined functions; functions in
/// cycles are added to `cyclic` and excluded from summary building (they
/// still get analyzed for their own errors, last).
fn call_order(m: &Module, cyclic: &mut HashSet<String>) -> Vec<String> {
    use localias_ast::visit::call_sites;
    let defined: HashSet<String> = m.functions().map(|f| f.name.name.clone()).collect();
    // Per-function callee lists.
    let mut callees: HashMap<String, HashSet<String>> = HashMap::new();
    for f in m.functions() {
        let mut set = HashSet::new();
        let tmp = Module {
            name: String::new(),
            items: vec![localias_ast::Item {
                kind: localias_ast::ItemKind::Fun(f.clone()),
            }],
            node_count: 0,
            spans: Vec::new(),
        };
        for (name, _) in call_sites(&tmp) {
            if defined.contains(&name) && name != f.name.name {
                set.insert(name);
            } else if name == f.name.name {
                cyclic.insert(name);
            }
        }
        callees.insert(f.name.name.clone(), set);
    }

    // Kahn's algorithm over the callee relation (callees first).
    let mut order = Vec::new();
    let mut remaining: HashSet<String> = defined.clone();
    loop {
        let ready: Vec<String> = remaining
            .iter()
            .filter(|f| {
                callees[*f]
                    .iter()
                    .all(|c| !remaining.contains(c) || cyclic.contains(c))
            })
            .cloned()
            .collect();
        if ready.is_empty() {
            break;
        }
        let mut ready = ready;
        ready.sort();
        for f in ready {
            remaining.remove(&f);
            order.push(f);
        }
    }
    // Whatever remains is in a cycle: analyze last, no summaries used for
    // calls into them (handled by `cyclic`).
    let mut rest: Vec<String> = remaining.into_iter().collect();
    rest.sort();
    for f in &rest {
        cyclic.insert(f.clone());
    }
    order.extend(rest);
    order
}
