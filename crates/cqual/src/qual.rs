//! The flow-sensitive lock-state lattice.
//!
//! CQual refines the `lock` type with the flow-sensitive qualifiers
//! `locked` and `unlocked`; our abstract state per location is the
//! four-point lattice below. `Top` is "either" — precisely the state a
//! *weak update* leaves a location in, and the state in which no
//! lock/unlock site can be verified.

use std::fmt;

/// The abstract state of one lock location at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LockState {
    /// Unreachable / untouched bottom.
    #[default]
    Bot,
    /// Definitely not held.
    Unlocked,
    /// Definitely held.
    Locked,
    /// May be either (the result of a weak update with conflicting
    /// states).
    Top,
}

impl LockState {
    /// Least upper bound.
    pub fn join(self, other: LockState) -> LockState {
        use LockState::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Unlocked, Unlocked) => Unlocked,
            (Locked, Locked) => Locked,
            _ => Top,
        }
    }

    /// Does this state *verify* the given requirement? `Top` verifies
    /// nothing; `Bot` (unreachable) verifies everything.
    pub fn verifies(self, required: LockState) -> bool {
        match self {
            LockState::Bot => true,
            s => s == required,
        }
    }

    /// Weakly updates to `new`: the location may or may not be the one
    /// concrete lock that changed, so the result covers both.
    pub fn weak_update(self, new: LockState) -> LockState {
        self.join(new)
    }
}

impl fmt::Display for LockState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockState::Bot => "⊥",
            LockState::Unlocked => "unlocked",
            LockState::Locked => "locked",
            LockState::Top => "⊤",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockState::*;

    #[test]
    fn join_is_commutative_and_idempotent() {
        let all = [Bot, Unlocked, Locked, Top];
        for a in all {
            assert_eq!(a.join(a), a);
            for b in all {
                assert_eq!(a.join(b), b.join(a));
            }
        }
    }

    #[test]
    fn join_is_associative() {
        let all = [Bot, Unlocked, Locked, Top];
        for a in all {
            for b in all {
                for c in all {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                }
            }
        }
    }

    #[test]
    fn weak_update_conflates() {
        assert_eq!(Unlocked.weak_update(Locked), Top);
        assert_eq!(Locked.weak_update(Locked), Locked);
        assert_eq!(Top.weak_update(Unlocked), Top);
        assert_eq!(Bot.weak_update(Locked), Locked);
    }

    #[test]
    fn verification() {
        assert!(Unlocked.verifies(Unlocked));
        assert!(!Unlocked.verifies(Locked));
        assert!(!Top.verifies(Locked));
        assert!(!Top.verifies(Unlocked));
        assert!(Bot.verifies(Locked), "unreachable code verifies anything");
    }
}
