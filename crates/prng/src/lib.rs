#![warn(missing_docs)]

//! A small, zero-dependency, deterministic pseudo-random number generator.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! `rand` (or `proptest`/`criterion`) from crates.io — even *optional*
//! dependencies must be resolvable against a registry index. This crate
//! supplies the slice of functionality the corpus generator, the
//! randomized tests and the benches actually use: a seedable 64-bit
//! generator with range sampling, Bernoulli draws, and Fisher–Yates
//! shuffling.
//!
//! The core is [SplitMix64](https://prng.di.unimi.it/splitmix64.c) — tiny,
//! fast, and statistically solid for test-input generation. Streams are
//! fully determined by the seed; there is no global state and no
//! platform dependence, so corpus generation stays byte-identical across
//! machines and thread counts.
//!
//! This is **not** a cryptographic generator and makes no uniformity
//! guarantee beyond what modulo reduction provides (bias is < 2⁻³² for
//! every range used in this workspace, far below what any test here could
//! observe).
//!
//! # Example
//!
//! ```
//! use localias_prng::Rng64;
//!
//! let mut rng = Rng64::seed_from_u64(42);
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! let mut xs = [1, 2, 3, 4, 5];
//! rng.shuffle(&mut xs);
//! // Deterministic: the same seed replays the same stream.
//! let mut rng2 = Rng64::seed_from_u64(42);
//! assert_eq!(rng2.gen_range(0..10usize), i);
//! ```

use std::ops::{Range, RangeInclusive};

/// A seedable deterministic 64-bit generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`), for the integer types used across the workspace.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

/// Integer ranges [`Rng64::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample(self, rng: &mut Rng64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                // width == 0 means the full u64 domain (only reachable for
                // u64::MIN..=u64::MAX); take the raw output.
                let draw = if width == 0 {
                    rng.next_u64()
                } else {
                    rng.next_u64() % width
                };
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=5i32);
            assert!((2..=5).contains(&y));
            let z = rng.gen_range(0..7u32);
            assert!(z < 7);
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng64::seed_from_u64(3);
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..=650).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..32).collect();
        let orig = xs.clone();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(xs, orig, "a 32-element shuffle staying put is ~0");
    }
}
